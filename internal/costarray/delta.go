package costarray

import "locusroute/internal/geom"

// Delta tracks changes made to a processor's view of the cost array since
// the last update was sent for each owned region. In the paper's message
// passing implementation every processor keeps a delta array with the same
// dimensions as the cost array (Section 4.1); increments from routing and
// decrements from rip-up accumulate here, and often cancel — the effect
// that makes message passing traffic so much smaller than shared memory
// traffic (Section 5.2).
//
// Delta wraps a CostArray and additionally maintains a per-region dirty
// bound so senders do not need to rescan the whole array to discover that
// nothing changed.
type Delta struct {
	arr   *CostArray
	part  geom.Partition
	dirty []geom.Rect // per owning processor: bbox of cells touched since last clear
}

// NewDelta returns an empty delta array for the partitioned grid.
func NewDelta(part geom.Partition) *Delta {
	return &Delta{
		arr:   New(part.Grid),
		part:  part,
		dirty: make([]geom.Rect, part.Procs()),
	}
}

// Add accumulates a change of d at (x, y).
func (d *Delta) Add(x, y int, v int32) {
	d.arr.Add(x, y, v)
	owner := d.part.Owner(geom.Pt(x, y))
	d.dirty[owner] = d.dirty[owner].AddPoint(geom.Pt(x, y))
}

// At returns the accumulated change at (x, y).
func (d *Delta) At(x, y int) int32 { return d.arr.At(x, y) }

// Array exposes the underlying cost-array storage of the deltas.
func (d *Delta) Array() *CostArray { return d.arr }

// Partition returns the owned-region partition the delta tracks.
func (d *Delta) Partition() geom.Partition { return d.part }

// DirtyBound returns the bounding box of cells touched in the owned region
// of proc since the last TakeRegion, without scanning. The box may include
// cells whose accumulated delta returned to zero (cancellation); TakeRegion
// performs the exact scan.
func (d *Delta) DirtyBound(proc int) geom.Rect { return d.dirty[proc] }

// HasChanges reports whether any cell in proc's owned region may have a
// non-zero delta.
func (d *Delta) HasChanges(proc int) bool { return !d.dirty[proc].Empty() }

// TakeRegion scans proc's owned region for non-zero deltas, returning the
// exact bounding box of changes and the row-major delta payload, then
// clears those deltas and the dirty bound. If every accumulated change
// cancelled out, the returned rect is empty, no payload is produced, and
// (per Section 4.3.2) no update needs to be sent. cellsScanned reports the
// scan work for the compute-time model.
func (d *Delta) TakeRegion(proc int) (bb geom.Rect, vals []int32, cellsScanned int) {
	bound := d.dirty[proc]
	if bound.Empty() {
		return geom.Rect{}, nil, 0
	}
	bb, cellsScanned = d.arr.ChangedBounds(bound)
	d.dirty[proc] = geom.Rect{}
	if bb.Empty() {
		return geom.Rect{}, nil, cellsScanned
	}
	bb, vals = d.arr.ExtractRect(bb)
	d.arr.ZeroRect(bb)
	return bb, vals, cellsScanned
}

// TakeWholeRegion extracts proc's entire owned region as a delta payload
// (zeros included) and clears it — the paper's second packet structure
// (Section 4.3.1), which is simple to assemble but wastes bytes. The
// returned rect is the full region even if only one cell changed; if
// nothing changed at all it returns an empty rect.
func (d *Delta) TakeWholeRegion(proc int) (bb geom.Rect, vals []int32, cellsScanned int) {
	if d.dirty[proc].Empty() {
		return geom.Rect{}, nil, 0
	}
	region := d.part.Region(proc)
	bb, vals = d.arr.ExtractRect(region)
	d.arr.ZeroRect(bb)
	d.dirty[proc] = geom.Rect{}
	return bb, vals, bb.Area()
}

// PeekRegion is TakeRegion without clearing: it scans and extracts but
// leaves the deltas in place. Used by blocking strategies that may abort.
func (d *Delta) PeekRegion(proc int) (bb geom.Rect, vals []int32, cellsScanned int) {
	bound := d.dirty[proc]
	if bound.Empty() {
		return geom.Rect{}, nil, 0
	}
	bb, cellsScanned = d.arr.ChangedBounds(bound)
	if bb.Empty() {
		return geom.Rect{}, nil, cellsScanned
	}
	bb, vals = d.arr.ExtractRect(bb)
	return bb, vals, cellsScanned
}

// Reset clears all deltas and dirty bounds.
func (d *Delta) Reset() {
	d.arr.Reset()
	for i := range d.dirty {
		d.dirty[i] = geom.Rect{}
	}
}

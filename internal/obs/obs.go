// Package obs is the run observability layer: zero-cost-when-disabled
// collectors that the execution backends thread through their hot
// paths, and the stable JSON document the commands emit under -json.
//
// Collectors are nil-safe: a nil *MP, *SM, *NodeClock, *NetRecorder,
// *Histogram or *Collector ignores every call, so instrumented code
// pays a single pointer test when observability is off and the paper
// tables stay byte-identical.
//
// # Document schema (locusroute.obs/v2)
//
// v2 is additive over v1: it introduces optional per-run sections —
// "crit_path" (the simulated-time critical path extracted from an event
// trace) and "partition" (the partitioned backend's tree decomposition
// and boundary-wire load); every v1 field is unchanged, so v1 consumers
// can read v2 documents by ignoring the new sections.
//
// A Snapshot is one JSON object per command invocation:
//
//	{
//	  "schema":  "locusroute.obs/v2",
//	  "command": "paper -all",       // the invocation that produced it
//	  "runs": [ ...one Run per routing execution... ]
//	}
//
// Each Run:
//
//	{
//	  "name":    "SRD=2 SLD=10", // row label within the command
//	  "backend": "mp-des",       // sequential | sm-live | sm-traced |
//	                             // mp-des | mp-live | cache-replay
//	  "circuit": "bnrE",
//	  "procs":   16,
//	  "quality": {"circuit_height": H, "occupancy": O},
//	  "sim_time_ns": T,          // virtual time (DES/traced); wall clock for live
//	  "nodes":   [...],          // MP DES: per-node simulated-time breakdown
//	  "network": {...},          // interconnect counters and histograms
//	  "messages": [{"kind": "SendLocData", "packets": P, "bytes": B}, ...],
//	  "cache":   [...],          // SM: coherence bus traffic per line size
//	  "trace":   {"reads": R, "writes": W, "refs": N},
//	  "phases":  [{"name": "iteration 0", "wall_ns": W}, ...], // live backends
//	  "crit_path": {...},        // MP DES with tracing: critical-path breakdown
//	  "partition": {...}         // partitioned backend: tree + boundary load
//	}
//
// The per-node breakdown (the paper's Section 5.1.3 lens) is exhaustive
// by construction: every nanosecond of a node's simulated life is
// charged to exactly one of the four categories, so
//
//	compute_ns + packet_ns + blocked_ns + barrier_ns == total_ns
//
// and total_ns is the virtual time at which the node finished its last
// iteration. Histograms use power-of-two buckets: each bucket's "le" is
// its inclusive upper bound and the next bucket starts at le+1.
package obs

import (
	"io"
	"sync"

	"locusroute/internal/sim"
)

// SchemaVersion identifies the JSON document layout.
const SchemaVersion = "locusroute.obs/v2"

// Quality is the (circuit height, occupancy factor) pair every backend
// reports.
type Quality struct {
	CircuitHeight int64 `json:"circuit_height"`
	Occupancy     int64 `json:"occupancy"`
}

// NodeTimes is one node's simulated-time breakdown. The four categories
// partition the node's whole life, so they sum to TotalNs exactly.
type NodeTimes struct {
	Node      int   `json:"node"`
	ComputeNs int64 `json:"compute_ns"` // routing work: rip-up, evaluation, commit
	PacketNs  int64 `json:"packet_ns"`  // packet assembly/disassembly, scans, network copies
	BlockedNs int64 `json:"blocked_ns"` // blocked on receive outside the barrier
	BarrierNs int64 `json:"barrier_ns"` // blocked at the inter-iteration barrier
	TotalNs   int64 `json:"total_ns"`
}

// KindCount is the traffic of one protocol packet kind.
type KindCount struct {
	Kind    string `json:"kind"`
	Packets int64  `json:"packets"`
	Bytes   int64  `json:"bytes"`
}

// NetworkDoc is the interconnect section of a run document.
type NetworkDoc struct {
	Bytes             int64         `json:"bytes"`
	Packets           int64         `json:"packets"`
	HopBytes          int64         `json:"hop_bytes,omitempty"`
	SelfPackets       int64         `json:"self_packets,omitempty"`
	SelfBytes         int64         `json:"self_bytes,omitempty"`
	ContentionDelayNs int64         `json:"contention_delay_ns,omitempty"`
	TotalLatencyNs    int64         `json:"total_latency_ns,omitempty"`
	Latency           *HistogramDoc `json:"latency_ns,omitempty"`
	LinkDelay         *HistogramDoc `json:"link_delay_ns,omitempty"`
	QueueDepth        *HistogramDoc `json:"queue_depth,omitempty"`
}

// CacheDoc is the coherence-simulation traffic at one cache line size.
type CacheDoc struct {
	LineSize       int     `json:"line_size"`
	Refs           int64   `json:"refs"`
	Bytes          int64   `json:"bytes"`
	FillBytes      int64   `json:"fill_bytes"`
	WriteWordBytes int64   `json:"write_word_bytes"`
	WritebackBytes int64   `json:"writeback_bytes"`
	Fills          int64   `json:"fills"`
	WriteWords     int64   `json:"write_words"`
	Writebacks     int64   `json:"writebacks"`
	Invalidations  int64   `json:"invalidations"`
	RefetchBytes   int64   `json:"refetch_bytes,omitempty"`
	WriteFraction  float64 `json:"write_fraction"`
}

// TraceDoc is the shared-reference trace length of a traced run.
type TraceDoc struct {
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	Refs   int64 `json:"refs"`
}

// PhaseDoc is one wall-clock phase of a live run.
type PhaseDoc struct {
	Name   string `json:"name"`
	WallNs int64  `json:"wall_ns"`
}

// CritPathStep is one interval of a run's simulated-time critical path.
type CritPathStep struct {
	Node     int    `json:"node"`
	Category string `json:"category"`
	FromNs   int64  `json:"from_ns"`
	ToNs     int64  `json:"to_ns"`
	// Wire is the wire being routed during a compute step (-1 otherwise).
	Wire int64 `json:"wire"`
	// FromNode is the sender of the packet that ended a wait step (-1
	// when the step is not a packet hop); Bytes is that packet's size.
	FromNode int   `json:"from_node"`
	Bytes    int64 `json:"bytes,omitempty"`
}

// PartitionDoc describes how the partitioned backend decomposed one run
// (schema v2, additive like crit_path): the realised partition tree, the
// boundary-wire load that limits its concurrency, per-region routing
// wall time, and — when the negotiated-congestion schedule ran — how the
// negotiation went.
type PartitionDoc struct {
	// Partitions is the number of leaf regions realised; Depth is the
	// bisection tree depth (0 = single leaf, the sequential shape).
	Partitions int `json:"partitions"`
	Depth      int `json:"depth"`
	// BoundaryWires counts wires that cross a partition cut and route
	// serially at their tree level; BoundaryFrac is their share of the
	// circuit's wires.
	BoundaryWires int     `json:"boundary_wires"`
	BoundaryFrac  float64 `json:"boundary_frac"`
	// LevelWires[d] is the number of wires classified at tree depth d
	// (the last entry is the concurrent leaf work).
	LevelWires []int `json:"level_wires,omitempty"`
	// RegionWallNs is the wall-clock routing time of each leaf region in
	// left-to-right order, summed over iterations.
	RegionWallNs []int64 `json:"region_wall_ns,omitempty"`
	// NegotiatedIters, OverusedCells and PresFacFinal describe the
	// negotiated-congestion schedule when it was enabled: passes
	// consumed, overused cells remaining at exit (0 = converged), and
	// the final pres_fac.
	NegotiatedIters int     `json:"negotiated_iters,omitempty"`
	OverusedCells   int     `json:"overused_cells,omitempty"`
	PresFacFinal    float64 `json:"pres_fac_final,omitempty"`
}

// CritPathDoc is the critical path extracted from a run's event trace
// (schema v2). The six category sums partition TotalNs exactly, the same
// way a NodeTimes entry partitions one node's life — but here the
// nanoseconds are only those on the chain of dependent events that set
// the run's simulated time.
type CritPathDoc struct {
	TotalNs    int64 `json:"total_ns"`
	ComputeNs  int64 `json:"compute_ns"`
	PacketNs   int64 `json:"packet_ns"`
	BlockedNs  int64 `json:"blocked_ns"`
	BarrierNs  int64 `json:"barrier_ns"`
	NetworkNs  int64 `json:"network_ns"`
	UntracedNs int64 `json:"untraced_ns"`
	// Hops counts the cross-node jumps (waits ended by another node's
	// packet); EndNode is the last-finishing node the walk started from.
	Hops    int `json:"hops"`
	EndNode int `json:"end_node"`
	// Steps is the full chain in forward time order.
	Steps []CritPathStep `json:"steps,omitempty"`
}

// Run is the observability document of one routing execution.
type Run struct {
	Name      string        `json:"name"`
	Backend   string        `json:"backend"`
	Circuit   string        `json:"circuit,omitempty"`
	Procs     int           `json:"procs,omitempty"`
	Quality   *Quality      `json:"quality,omitempty"`
	SimTimeNs int64         `json:"sim_time_ns,omitempty"`
	Nodes     []NodeTimes   `json:"nodes,omitempty"`
	Network   *NetworkDoc   `json:"network,omitempty"`
	Messages  []KindCount   `json:"messages,omitempty"`
	Cache     []CacheDoc    `json:"cache,omitempty"`
	Trace     *TraceDoc     `json:"trace,omitempty"`
	Phases    []PhaseDoc    `json:"phases,omitempty"`
	CritPath  *CritPathDoc  `json:"crit_path,omitempty"`
	Partition *PartitionDoc `json:"partition,omitempty"`
}

// Snapshot is the complete document of one command invocation.
type Snapshot struct {
	Schema  string `json:"schema"`
	Command string `json:"command,omitempty"`
	Runs    []Run  `json:"runs"`
}

// WriteJSON writes the snapshot as indented JSON with a trailing
// newline. Field order follows the struct definitions, so the output is
// stable across runs of the same configuration.
func (s Snapshot) WriteJSON(w io.Writer) error { return writeJSON(w, s) }

// Collector accumulates run documents across an invocation. A nil
// Collector is the disabled state: Enabled reports false and Append
// discards.
type Collector struct {
	mu   sync.Mutex
	runs []*Run
}

// NewCollector returns an empty, enabled collector.
func NewCollector() *Collector { return &Collector{} }

// Enabled reports whether run documents should be produced at all.
func (c *Collector) Enabled() bool { return c != nil }

// Append stores a run document and returns a pointer to the stored
// copy, so callers can attach late sections (e.g. cache replays that
// happen after the routing run). Returns nil on a nil collector.
func (c *Collector) Append(r Run) *Run {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	stored := &r
	c.runs = append(c.runs, stored)
	return stored
}

// Last returns the most recently appended run document, so callers that
// route through an API which appends the document internally (the
// pkg/locusroute backends) can still attach late sections. Returns nil
// on a nil or empty collector.
func (c *Collector) Last() *Run {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.runs) == 0 {
		return nil
	}
	return c.runs[len(c.runs)-1]
}

// Take returns the collector's stored run documents in append order and
// leaves the collector empty. The parallel experiment driver runs each
// independent cell against a private forked collector, then Takes the
// fork and Adopts its documents into the invocation's collector in
// submission order — never completion order — so a -json document is
// byte-identical at every worker count. Returns nil on a nil collector.
func (c *Collector) Take() []*Run {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	runs := c.runs
	c.runs = nil
	return runs
}

// Adopt appends already-assembled run documents, preserving pointer
// identity so sections attached late through Append's returned pointer
// (e.g. cache replays) stay visible. A nil collector discards.
func (c *Collector) Adopt(runs []*Run) {
	if c == nil || len(runs) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs = append(c.runs, runs...)
}

// Snapshot assembles the document for the whole invocation.
func (c *Collector) Snapshot(command string) Snapshot {
	s := Snapshot{Schema: SchemaVersion, Command: command, Runs: []Run{}}
	if c == nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.runs {
		s.Runs = append(s.Runs, *r)
	}
	return s
}

// NetRecorder collects the interconnect histograms of one run. All
// methods tolerate a nil receiver.
type NetRecorder struct {
	// Latency is the end-to-end packet latency (send to tail arrival) in
	// simulated nanoseconds.
	Latency Histogram
	// LinkDelay is the head-blocking contention delay observed at every
	// link traversal (zero when the link was free), in simulated
	// nanoseconds.
	LinkDelay Histogram
	// QueueDepth is the receive-queue depth seen at every dequeue,
	// counting the packet being taken.
	QueueDepth Histogram
}

// ObserveLatency records one delivered packet's latency.
func (r *NetRecorder) ObserveLatency(d sim.Time) {
	if r != nil {
		r.Latency.Observe(int64(d))
	}
}

// ObserveLinkDelay records the contention delay of one link traversal.
func (r *NetRecorder) ObserveLinkDelay(d sim.Time) {
	if r != nil {
		r.LinkDelay.Observe(int64(d))
	}
}

// ObserveQueueDepth records the receive-queue depth at one dequeue.
func (r *NetRecorder) ObserveQueueDepth(depth int) {
	if r != nil {
		r.QueueDepth.Observe(int64(depth))
	}
}

// Doc renders the recorder's histograms into a network document.
func (r *NetRecorder) Doc(doc *NetworkDoc) {
	if r == nil || doc == nil {
		return
	}
	doc.Latency = r.Latency.Doc()
	doc.LinkDelay = r.LinkDelay.Doc()
	doc.QueueDepth = r.QueueDepth.Doc()
}

// MP is the observer of one message passing run: per-node simulated
// time clocks and interconnect histograms for the DES runtime,
// wall-clock phases for the live runtime. A nil *MP disables all of it.
type MP struct {
	Nodes  []NodeClock
	Net    NetRecorder
	Phases PhaseTimer
}

// NewMP returns an observer sized for procs nodes.
func NewMP(procs int) *MP { return &MP{Nodes: make([]NodeClock, procs)} }

// Prepare resets the per-node clocks and network histograms for a run
// of procs nodes; the DES runtime calls it at run start, so a zero-value
// observer works for any processor count and an observer is never
// polluted by a previous run.
func (o *MP) Prepare(procs int) {
	if o == nil {
		return
	}
	o.Nodes = make([]NodeClock, procs)
	o.Net = NetRecorder{}
}

// NodeClock returns node id's clock, or nil when disabled.
func (o *MP) NodeClock(id int) *NodeClock {
	if o == nil || id < 0 || id >= len(o.Nodes) {
		return nil
	}
	return &o.Nodes[id]
}

// NetRecorder returns the interconnect recorder, or nil when disabled.
func (o *MP) NetRecorder() *NetRecorder {
	if o == nil {
		return nil
	}
	return &o.Net
}

// Phase starts a named wall-clock phase and returns its stop function.
func (o *MP) Phase(name string) func() {
	if o == nil {
		return func() {}
	}
	return o.Phases.Start(name)
}

// NodeTimes renders every node clock into documents.
func (o *MP) NodeTimes() []NodeTimes {
	if o == nil {
		return nil
	}
	out := make([]NodeTimes, len(o.Nodes))
	for i := range o.Nodes {
		out[i] = o.Nodes[i].Times(i)
	}
	return out
}

// PhaseDocs returns the completed wall-clock phases.
func (o *MP) PhaseDocs() []PhaseDoc {
	if o == nil {
		return nil
	}
	return o.Phases.Docs()
}

// SM is the observer of one shared memory run: wall-clock phases for
// the live runtime (the traced runtime's counters ride its Result).
type SM struct {
	Phases PhaseTimer
}

// NewSM returns an empty shared memory observer.
func NewSM() *SM { return &SM{} }

// Phase starts a named wall-clock phase and returns its stop function.
func (o *SM) Phase(name string) func() {
	if o == nil {
		return func() {}
	}
	return o.Phases.Start(name)
}

// PhaseDocs returns the completed wall-clock phases.
func (o *SM) PhaseDocs() []PhaseDoc {
	if o == nil {
		return nil
	}
	return o.Phases.Docs()
}

package obs

import "math/bits"

// histBuckets covers int64 values with power-of-two buckets: bucket 0
// holds value 0, bucket i (i >= 1) holds [2^(i-1), 2^i - 1]. 64 buckets
// plus the zero bucket cover every non-negative int64.
const histBuckets = 64

// Histogram is a fixed-shape power-of-two histogram of non-negative
// int64 samples. The zero value is ready to use; a nil *Histogram
// ignores Observe and renders an empty document.
type Histogram struct {
	counts [histBuckets]int64
	sum    int64
	count  int64
	max    int64
}

// bucketOf maps a sample to its bucket index. Negative samples clamp to
// the zero bucket; they cannot occur from the instrumented sources.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(v)]++
	h.sum += v
	h.count++
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all recorded samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// BucketDoc is one occupied histogram bucket. Le is the inclusive upper
// bound of the bucket's value range; the range starts just above the
// previous occupied-or-not bucket's Le (0, or 2^(i-1) for bucket i).
type BucketDoc struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramDoc is the JSON rendering of a histogram: aggregate moments
// plus the occupied buckets in ascending order.
type HistogramDoc struct {
	Count   int64       `json:"count"`
	Sum     int64       `json:"sum"`
	Max     int64       `json:"max"`
	Mean    float64     `json:"mean"`
	Buckets []BucketDoc `json:"buckets,omitempty"`
}

// Doc renders the histogram, or nil when it has no samples.
func (h *Histogram) Doc() *HistogramDoc {
	if h == nil || h.count == 0 {
		return nil
	}
	d := &HistogramDoc{Count: h.count, Sum: h.sum, Max: h.max, Mean: h.Mean()}
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		le := int64(0)
		if i > 0 {
			le = 1<<uint(i) - 1
		}
		d.Buckets = append(d.Buckets, BucketDoc{Le: le, Count: n})
	}
	return d
}

package obs

import (
	"sync"
	"time"
)

// PhaseTimer records named wall-clock phases of a live run. Start
// returns the stop function for the phase; phases appear in the
// document in completion order. The zero value is ready; a nil *MP/*SM
// never reaches it, and the returned closures are safe to call once.
type PhaseTimer struct {
	mu     sync.Mutex
	phases []PhaseDoc
}

// Start begins a named phase and returns the function that ends it.
func (t *PhaseTimer) Start(name string) func() {
	begin := time.Now()
	return func() {
		d := time.Since(begin)
		t.mu.Lock()
		t.phases = append(t.phases, PhaseDoc{Name: name, WallNs: d.Nanoseconds()})
		t.mu.Unlock()
	}
}

// Docs returns the completed phases.
func (t *PhaseTimer) Docs() []PhaseDoc {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PhaseDoc, len(t.phases))
	copy(out, t.phases)
	return out
}

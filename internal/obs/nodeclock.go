package obs

import "locusroute/internal/sim"

// TimeCategory names one of the four exhaustive charges a DES node's
// simulated time is split into.
type TimeCategory int

const (
	// TimeCompute is routing work: rip-up, candidate evaluation, commit.
	TimeCompute TimeCategory = iota
	// TimePacket is packet assembly/disassembly, region scans, and the
	// send/receive processing charges of the network interface.
	TimePacket
	// TimeBlocked is time parked on an empty receive queue outside the
	// inter-iteration barrier.
	TimeBlocked
	// TimeBarrier is time parked waiting for the inter-iteration barrier
	// to release.
	TimeBarrier

	timeCategories
)

// NodeClock splits one DES node's simulated lifetime into the four
// TimeCategory charges. Instrumentation stamps the clock at every point
// where virtual time advances: Account(now, cat) charges the interval
// since the previous stamp to cat and moves the stamp to now. Because
// the DES runtime only advances a node's local time inside Wait and
// Recv — each of which is bracketed by exactly one Account call — the
// categories partition the node's whole life and sum to its finish
// time exactly.
//
// A nil *NodeClock ignores all calls, so the disabled path costs one
// pointer test.
type NodeClock struct {
	last sim.Time
	cats [timeCategories]sim.Time
}

// Account charges now−last to cat and advances the stamp to now.
func (c *NodeClock) Account(now sim.Time, cat TimeCategory) {
	if c == nil {
		return
	}
	c.cats[cat] += now - c.last
	c.last = now
}

// Elapsed returns the total charged to cat so far.
func (c *NodeClock) Elapsed(cat TimeCategory) sim.Time {
	if c == nil {
		return 0
	}
	return c.cats[cat]
}

// Times renders the clock for node id.
func (c *NodeClock) Times(id int) NodeTimes {
	t := NodeTimes{Node: id}
	if c == nil {
		return t
	}
	t.ComputeNs = int64(c.cats[TimeCompute])
	t.PacketNs = int64(c.cats[TimePacket])
	t.BlockedNs = int64(c.cats[TimeBlocked])
	t.BarrierNs = int64(c.cats[TimeBarrier])
	t.TotalNs = t.ComputeNs + t.PacketNs + t.BlockedNs + t.BarrierNs
	return t
}

package obs

import (
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {-5, 0},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
}

func TestHistogramDoc(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 3, 3, 9} {
		h.Observe(v)
	}
	d := h.Doc()
	if d == nil {
		t.Fatal("Doc() = nil for non-empty histogram")
	}
	if d.Count != 5 || d.Sum != 16 || d.Max != 9 {
		t.Fatalf("doc moments = %+v, want count=5 sum=16 max=9", d)
	}
	want := []BucketDoc{{0, 1}, {1, 1}, {3, 2}, {15, 1}}
	if len(d.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", d.Buckets, want)
	}
	for i := range want {
		if d.Buckets[i] != want[i] {
			t.Errorf("bucket %d = %v, want %v", i, d.Buckets[i], want[i])
		}
	}
	// Every sample must lie within its reported bucket's bound.
	total := int64(0)
	for _, b := range d.Buckets {
		total += b.Count
	}
	if total != d.Count {
		t.Errorf("bucket counts sum to %d, want %d", total, d.Count)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("nil histogram reported non-zero moments")
	}
	if h.Doc() != nil {
		t.Error("nil histogram rendered a document")
	}
}

func TestNodeClockPartitions(t *testing.T) {
	var c NodeClock
	c.Account(10, TimeCompute)
	c.Account(14, TimePacket)
	c.Account(14, TimeBlocked) // zero-width interval
	c.Account(30, TimeBlocked)
	c.Account(37, TimeBarrier)
	c.Account(40, TimeCompute)

	ti := c.Times(3)
	if ti.Node != 3 {
		t.Errorf("node = %d, want 3", ti.Node)
	}
	if ti.ComputeNs != 13 || ti.PacketNs != 4 || ti.BlockedNs != 16 || ti.BarrierNs != 7 {
		t.Errorf("breakdown = %+v", ti)
	}
	if got := ti.ComputeNs + ti.PacketNs + ti.BlockedNs + ti.BarrierNs; got != ti.TotalNs || got != 40 {
		t.Errorf("categories sum to %d, total %d, want 40", got, ti.TotalNs)
	}
}

func TestNilCollectorsNoOp(t *testing.T) {
	var mp *MP
	mp.Prepare(4)
	if mp.NodeClock(0) != nil || mp.NetRecorder() != nil || mp.NodeTimes() != nil {
		t.Error("nil MP handed out live collectors")
	}
	mp.Phase("x")() // must not panic

	var sm *SM
	sm.Phase("x")()

	var nc *NodeClock
	nc.Account(5, TimeCompute)
	if nc.Elapsed(TimeCompute) != 0 {
		t.Error("nil NodeClock accumulated time")
	}

	var nr *NetRecorder
	nr.ObserveLatency(1)
	nr.ObserveLinkDelay(1)
	nr.ObserveQueueDepth(1)
	nr.Doc(&NetworkDoc{})

	var col *Collector
	if col.Enabled() {
		t.Error("nil collector claims enabled")
	}
	if col.Append(Run{}) != nil {
		t.Error("nil collector stored a run")
	}
	s := col.Snapshot("cmd")
	if s.Schema != SchemaVersion || len(s.Runs) != 0 {
		t.Errorf("nil collector snapshot = %+v", s)
	}
}

func TestCollectorLateAttach(t *testing.T) {
	col := NewCollector()
	r := col.Append(Run{Name: "a", Backend: "sm-traced"})
	r.Cache = append(r.Cache, CacheDoc{LineSize: 16})
	s := col.Snapshot("smtrace")
	if len(s.Runs) != 1 || len(s.Runs[0].Cache) != 1 || s.Runs[0].Cache[0].LineSize != 16 {
		t.Fatalf("late-attached cache doc lost: %+v", s.Runs)
	}
}

func TestSnapshotJSONStable(t *testing.T) {
	col := NewCollector()
	run := col.Append(Run{Name: "r", Backend: "mp-des", Procs: 2})
	run.Nodes = []NodeTimes{{Node: 0, ComputeNs: 1, TotalNs: 1}}

	var a, b strings.Builder
	if err := col.Snapshot("test").WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := col.Snapshot("test").WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renderings of the same snapshot differ")
	}
	for _, want := range []string{SchemaVersion, `"compute_ns": 1`, `"backend": "mp-des"`} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("JSON missing %q:\n%s", want, a.String())
		}
	}
	if !strings.HasSuffix(a.String(), "\n") {
		t.Error("JSON missing trailing newline")
	}
}

func TestPhaseTimer(t *testing.T) {
	var pt PhaseTimer
	stop := pt.Start("warm")
	stop()
	pt.Start("route")()
	docs := pt.Docs()
	if len(docs) != 2 || docs[0].Name != "warm" || docs[1].Name != "route" {
		t.Fatalf("phases = %+v", docs)
	}
	for _, d := range docs {
		if d.WallNs < 0 {
			t.Errorf("phase %q negative duration %d", d.Name, d.WallNs)
		}
	}
}

package obs

import (
	"fmt"
	"strings"
)

// PromText renders the Prometheus text exposition format (version
// 0.0.4) by hand — the serving layer's /metrics endpoint without a
// client-library dependency. It enforces the format's structural rules
// so callers cannot emit an invalid page:
//
//   - HELP and TYPE lines appear exactly once per metric name, before
//     its first sample, even when many labelled series share the name;
//   - label values are escaped (backslash, double quote, newline);
//   - histograms render cumulative buckets ending in le="+Inf" plus the
//     _sum and _count series, as the format requires.
//
// The zero value is ready to use; render with the fluent methods and
// collect the page with String or Bytes.
type PromText struct {
	b    strings.Builder
	seen map[string]string // metric name -> emitted TYPE
}

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// ContentType is the exposition content type for HTTP responses.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// EscapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// header writes the HELP/TYPE preamble the first time name appears.
// Later calls for the same name are no-ops, so interleaved labelled
// series never duplicate headers.
func (w *PromText) header(name, help, typ string) {
	if w.seen == nil {
		w.seen = make(map[string]string)
	}
	if _, done := w.seen[name]; done {
		return
	}
	w.seen[name] = typ
	fmt.Fprintf(&w.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// labelString renders a {a="b",...} block, or "" without labels.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, EscapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// Counter emits one counter sample.
func (w *PromText) Counter(name, help string, value int64, labels ...Label) {
	w.header(name, help, "counter")
	fmt.Fprintf(&w.b, "%s%s %d\n", name, labelString(labels), value)
}

// Gauge emits one gauge sample.
func (w *PromText) Gauge(name, help string, value int64, labels ...Label) {
	w.header(name, help, "gauge")
	fmt.Fprintf(&w.b, "%s%s %d\n", name, labelString(labels), value)
}

// Histogram emits one histogram series from a HistogramDoc: cumulative
// buckets, the +Inf bucket, then _sum and _count. A nil doc renders the
// empty histogram (0 samples), keeping series present from first
// scrape.
func (w *PromText) Histogram(name, help string, d *HistogramDoc, labels ...Label) {
	w.header(name, help, "histogram")
	ls := labelString(labels)
	var cum, sum, count int64
	if d != nil {
		for _, bk := range d.Buckets {
			cum += bk.Count
			fmt.Fprintf(&w.b, "%s_bucket%s %d\n", name, bucketLabels(labels, fmt.Sprintf("%d", bk.Le)), cum)
		}
		sum, count = d.Sum, d.Count
	}
	fmt.Fprintf(&w.b, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), count)
	fmt.Fprintf(&w.b, "%s_sum%s %d\n%s_count%s %d\n", name, ls, sum, name, ls, count)
}

// bucketLabels merges the le label into the caller's labels.
func bucketLabels(labels []Label, le string) string {
	merged := make([]Label, 0, len(labels)+1)
	merged = append(merged, labels...)
	merged = append(merged, Label{Name: "le", Value: le})
	return labelString(merged)
}

// String returns the rendered page.
func (w *PromText) String() string { return w.b.String() }

// Bytes returns the rendered page as a byte slice.
func (w *PromText) Bytes() []byte { return []byte(w.b.String()) }

package obs

import (
	"encoding/json"
	"io"
)

// writeJSON marshals v as two-space-indented JSON with a trailing
// newline. Every document type here is a struct (never a map), so
// field order — and therefore the byte output — is deterministic.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

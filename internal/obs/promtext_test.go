package obs

import (
	"fmt"
	"strings"
	"testing"
)

// TestPromTextValidity is the format-validity test: a page mixing plain
// counters, labelled series sharing one metric name, gauges and
// histograms must have exactly one HELP and one TYPE line per metric
// name, each before the metric's first sample, and every sample line
// must parse as name{labels} value.
func TestPromTextValidity(t *testing.T) {
	var w PromText
	w.Counter("svc_requests_total", "requests", 3)
	w.Counter("svc_policy_total", "per-element decisions", 7, Label{Name: "element", Value: "ratelimit"})
	w.Counter("svc_policy_total", "per-element decisions", 9, Label{Name: "element", Value: "breaker"})
	w.Gauge("svc_in_flight", "admitted now", 2)
	h := &Histogram{}
	for _, v := range []int64{0, 1, 3, 200} {
		h.Observe(v)
	}
	w.Histogram("svc_wait_us", "queue wait", h.Doc())
	w.Histogram("svc_empty", "never observed", nil)
	page := w.String()

	helps := map[string]int{}
	types := map[string]int{}
	samples := map[string]int{}
	var order []string // comment vs sample interleaving check
	for _, line := range strings.Split(strings.TrimRight(page, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.Fields(line)[2]
			helps[name]++
			order = append(order, "help "+name)
		case strings.HasPrefix(line, "# TYPE "):
			name := strings.Fields(line)[2]
			types[name]++
			order = append(order, "type "+name)
		default:
			var name string
			var value int64
			base := line
			if i := strings.IndexByte(line, '{'); i >= 0 {
				j := strings.LastIndexByte(line, '}')
				if j < i {
					t.Fatalf("malformed label block: %q", line)
				}
				base = line[:i] + line[j+1:]
			}
			if _, err := fmt.Sscanf(base, "%s %d", &name, &value); err != nil {
				t.Fatalf("unparseable sample line %q: %v", line, err)
			}
			samples[name]++
			order = append(order, "sample "+name)
		}
	}
	for name, n := range helps {
		if n != 1 {
			t.Errorf("metric %s has %d HELP lines, want exactly 1", name, n)
		}
		if types[name] != 1 {
			t.Errorf("metric %s has %d TYPE lines, want exactly 1", name, types[name])
		}
	}
	// svc_policy_total: two labelled samples, one header pair.
	if samples["svc_policy_total"] != 2 {
		t.Errorf("svc_policy_total samples = %d, want 2", samples["svc_policy_total"])
	}
	// Headers precede their first sample.
	pos := map[string]int{}
	for i, ev := range order {
		if _, ok := pos[ev]; !ok {
			pos[ev] = i
		}
	}
	for name := range helps {
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		_ = base
		for _, suffix := range []string{"", "_bucket", "_sum", "_count"} {
			if p, ok := pos["sample "+name+suffix]; ok && p < pos["help "+name] {
				t.Errorf("metric %s: sample before HELP", name)
			}
		}
	}
}

// TestPromTextHistogramShape pins the cumulative-bucket contract: each
// bucket's value includes every smaller bucket, the +Inf bucket equals
// _count, and an empty histogram still renders the full series.
func TestPromTextHistogramShape(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{1, 1, 2, 5} {
		h.Observe(v)
	}
	var w PromText
	w.Histogram("x", "h", h.Doc())
	page := w.String()
	var lastCum int64 = -1
	var infSeen bool
	for _, line := range strings.Split(page, "\n") {
		if !strings.HasPrefix(line, "x_bucket") {
			continue
		}
		var v int64
		fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v)
		if v < lastCum {
			t.Errorf("non-cumulative bucket line %q after %d", line, lastCum)
		}
		lastCum = v
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if v != 4 {
				t.Errorf("+Inf bucket %d, want 4 (the sample count)", v)
			}
		}
	}
	if !infSeen {
		t.Error("no +Inf bucket")
	}
	if !strings.Contains(page, "x_sum 9") || !strings.Contains(page, "x_count 4") {
		t.Errorf("sum/count series wrong:\n%s", page)
	}

	var we PromText
	we.Histogram("y", "empty", nil)
	for _, want := range []string{`y_bucket{le="+Inf"} 0`, "y_sum 0", "y_count 0"} {
		if !strings.Contains(we.String(), want) {
			t.Errorf("empty histogram missing %q:\n%s", want, we.String())
		}
	}
}

// TestEscapeLabelValue pins the three escapes the format requires.
func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		`back\slash`:   `back\\slash`,
		`qu"ote`:       `qu\"ote`,
		"new\nline":    `new\nline`,
		`all\"` + "\n": `all\\\"\n`,
	}
	for in, want := range cases {
		if got := EscapeLabelValue(in); got != want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
	var w PromText
	w.Counter("m", "h", 1, Label{Name: "v", Value: "a\"b\nc\\d"})
	if !strings.Contains(w.String(), `m{v="a\"b\nc\\d"} 1`) {
		t.Errorf("labelled sample not escaped:\n%s", w.String())
	}
}

package obs

import (
	"fmt"
	"os"
	"runtime/pprof"
)

// WriteFile writes the snapshot as JSON to path; "-" writes to standard
// output.
func (s Snapshot) WriteFile(path string) error {
	if path == "-" {
		return s.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write %s: %w", path, err)
	}
	return f.Close()
}

// StartCPUProfile starts a CPU profile written to path and returns the
// function that stops it and closes the file. An empty path is a no-op.
func StartCPUProfile(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

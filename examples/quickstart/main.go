// Quickstart: generate a small standard cell circuit, route it
// sequentially, and route it again with the goroutine shared memory
// router, comparing the quality measures. Both routers are constructed
// through the public pkg/locusroute backend API.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"locusroute/internal/circuit"
	"locusroute/pkg/locusroute"
)

func main() {
	log.SetFlags(0)

	// A small synthetic circuit: 8 channels, 120 grid columns, 150 wires.
	c, err := circuit.Generate(circuit.GenParams{
		Name:     "quickstart",
		Channels: 8,
		Grids:    120,
		Wires:    150,
		MeanSpan: 12,
		LongFrac: 0.1,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s: %s\n\n", c.Name, circuit.ComputeStats(c))

	// Route on one processor: the reference result.
	seqBackend, err := locusroute.NewSequential()
	if err != nil {
		log.Fatal(err)
	}
	seq, err := seqBackend.Route(context.Background(), locusroute.Request{Circuit: c})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential router:\n")
	fmt.Printf("  circuit height   %d (total routing tracks; lower is better)\n", seq.CircuitHeight)
	fmt.Printf("  occupancy factor %d (sum of path costs at routing time)\n", seq.Occupancy)
	fmt.Printf("  congested cells  %d of %d\n\n", seq.Final.NonZeroCells(), c.Grid.Cells())

	// Route with 4 goroutines sharing one atomic cost array (the paper's
	// shared memory style: no locks, a distributed loop, a barrier
	// between rip-up-and-reroute iterations).
	smBackend, err := locusroute.NewSharedMemory(locusroute.WithProcs(4))
	if err != nil {
		log.Fatal(err)
	}
	par, err := smBackend.Route(context.Background(), locusroute.Request{Circuit: c})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared memory router (4 goroutines):\n")
	fmt.Printf("  circuit height   %d\n", par.CircuitHeight)
	fmt.Printf("  occupancy factor %d\n", par.Occupancy)
	fmt.Printf("\nparallel quality is close to sequential but not identical:\n")
	fmt.Printf("processors route simultaneously without seeing each other's\n")
	fmt.Printf("in-flight wires — the central tradeoff the paper studies.\n")
}

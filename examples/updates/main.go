// Updates: explore the message passing update strategy space of the paper
// (Section 4.3) on one circuit — pure sender initiated, pure receiver
// initiated (blocking and non-blocking), and the mixed schedule — and
// print a quality / traffic / time comparison, i.e. the shape of the
// paper's Tables 1 and 2. Each schedule is a WithStrategy option on the
// pkg/locusroute message passing backend.
//
//	go run ./examples/updates
package main

import (
	"context"
	"fmt"
	"log"

	"locusroute/internal/circuit"
	"locusroute/internal/metrics"
	"locusroute/internal/mp"
	"locusroute/pkg/locusroute"
)

func main() {
	log.SetFlags(0)

	c, err := circuit.Generate(circuit.BnrELike(1))
	if err != nil {
		log.Fatal(err)
	}
	const procs = 16

	strategies := []struct {
		label string
		st    mp.Strategy
	}{
		{"sender, frequent (SRD=2 SLD=1)", mp.SenderInitiated(2, 1)},
		{"sender, standard (SRD=2 SLD=10)", mp.SenderInitiated(2, 10)},
		{"sender, rare (SRD=10 SLD=20)", mp.SenderInitiated(10, 20)},
		{"receiver, eager (RLD=1 RRD=5)", mp.ReceiverInitiated(1, 5, false)},
		{"receiver, lazy (RLD=1 RRD=30)", mp.ReceiverInitiated(1, 30, false)},
		{"receiver, blocking (RLD=1 RRD=5)", mp.ReceiverInitiated(1, 5, true)},
		{"mixed (SLD=5 SRD=2 RLD=1 RRD=5)", mp.Strategy{SendLocData: 5, SendRmtData: 2, ReqLocData: 1, ReqRmtData: 5}},
		{"no updates at all", mp.Strategy{}},
	}

	table := metrics.NewTable(
		fmt.Sprintf("update strategies on %s, %d processors", c.Name, procs),
		"Strategy", "Ckt Ht.", "Occup.", "MBytes", "Time (s)")
	for _, entry := range strategies {
		backend, err := locusroute.NewMessagePassing(
			locusroute.WithProcs(procs),
			locusroute.WithStrategy(entry.st))
		if err != nil {
			log.Fatal(err)
		}
		res, err := backend.Route(context.Background(), locusroute.Request{Circuit: c})
		if err != nil {
			log.Fatal(err)
		}
		table.Add(entry.label,
			fmt.Sprintf("%d", res.CircuitHeight),
			fmt.Sprintf("%d", res.Occupancy),
			fmt.Sprintf("%.3f", res.MP.MBytes()),
			metrics.Seconds(res.MP.Time.Seconds()))
	}
	fmt.Println(table)
	fmt.Println("things to notice (the paper's observations):")
	fmt.Println(" - sender initiated traffic is several times receiver initiated traffic")
	fmt.Println(" - rarer updates trade traffic and time against occupancy quality")
	fmt.Println(" - blocking costs time without buying quality")
	fmt.Println(" - with no updates at all, views never synchronise and quality suffers")
}

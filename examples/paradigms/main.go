// Paradigms: the paper's two programming models as real Go programs, side
// by side. The shared memory version routes with goroutines sharing one
// atomic cost array; the message passing version routes with goroutines
// whose only interaction is marshalled packets over channels — the same
// protocol the simulated-mesh experiments measure. Quality, wall-clock
// time, and the message passing version's byte count are compared. All
// three implementations are constructed through the one public Backend
// interface in pkg/locusroute.
//
//	go run ./examples/paradigms
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"locusroute/internal/circuit"
	"locusroute/internal/metrics"
	"locusroute/pkg/locusroute"
)

func main() {
	log.SetFlags(0)

	c, err := circuit.Generate(circuit.BnrELike(1))
	if err != nil {
		log.Fatal(err)
	}
	// Use several workers even on few cores: the point is the two
	// consistency disciplines, which are concurrency properties, not
	// parallel speedup.
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		procs = 4
	}
	if procs > 8 {
		procs = 8
	}
	fmt.Printf("routing %s (%d wires) with %d workers\n\n", c.Name, len(c.Wires), procs)

	table := metrics.NewTable("two paradigms, real goroutines",
		"Implementation", "Ckt Ht.", "Occup.", "Wall time", "Update bytes")

	// Three backends, one interface: the row label and update-byte
	// column are the only per-paradigm code left.
	backends := []struct {
		label string
		make  func() (locusroute.Backend, error)
	}{
		{"sequential reference", func() (locusroute.Backend, error) {
			return locusroute.NewSequential()
		}},
		{"shared memory (atomic array)", func() (locusroute.Backend, error) {
			return locusroute.NewSharedMemory(locusroute.WithProcs(procs))
		}},
		{"message passing (channels)", func() (locusroute.Backend, error) {
			return locusroute.NewLiveMessagePassing(locusroute.WithProcs(procs))
		}},
	}
	for _, b := range backends {
		backend, err := b.make()
		if err != nil {
			log.Fatal(err)
		}
		res, err := backend.Route(context.Background(), locusroute.Request{Circuit: c})
		if err != nil {
			log.Fatal(err)
		}
		bytes := "-"
		if res.MP != nil {
			bytes = fmt.Sprintf("%d", res.MP.UpdateBytes)
		}
		table.Add(b.label,
			fmt.Sprintf("%d", res.CircuitHeight), fmt.Sprintf("%d", res.Occupancy),
			res.Wall.Round(time.Millisecond).String(), bytes)
	}

	fmt.Println(table)
	fmt.Println("the shared memory program relies on the hardware (here: atomic word")
	fmt.Println("access) for consistency; the message passing program buys whatever")
	fmt.Println("consistency its update schedule pays for, in marshalled bytes.")
}

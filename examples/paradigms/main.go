// Paradigms: the paper's two programming models as real Go programs, side
// by side. The shared memory version routes with goroutines sharing one
// atomic cost array; the message passing version routes with goroutines
// whose only interaction is marshalled packets over channels — the same
// protocol the simulated-mesh experiments measure. Quality, wall-clock
// time, and the message passing version's byte count are compared.
//
//	go run ./examples/paradigms
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"locusroute/internal/assign"
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/metrics"
	"locusroute/internal/mp"
	"locusroute/internal/route"
	"locusroute/internal/sm"
)

func main() {
	log.SetFlags(0)

	c, err := circuit.Generate(circuit.BnrELike(1))
	if err != nil {
		log.Fatal(err)
	}
	// Use several workers even on few cores: the point is the two
	// consistency disciplines, which are concurrency properties, not
	// parallel speedup.
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		procs = 4
	}
	if procs > 8 {
		procs = 8
	}
	fmt.Printf("routing %s (%d wires) with %d workers\n\n", c.Name, len(c.Wires), procs)

	table := metrics.NewTable("two paradigms, real goroutines",
		"Implementation", "Ckt Ht.", "Occup.", "Wall time", "Update bytes")

	// Uniprocessor reference.
	start := time.Now()
	seq, _ := route.Sequential(c, route.DefaultParams())
	table.Add("sequential reference",
		fmt.Sprintf("%d", seq.CircuitHeight), fmt.Sprintf("%d", seq.Occupancy),
		time.Since(start).Round(time.Millisecond).String(), "-")

	// Shared memory: one atomic cost array, a distributed loop, no locks.
	smCfg := sm.DefaultConfig()
	smCfg.Procs = procs
	start = time.Now()
	smRes, err := sm.RunLive(c, smCfg)
	if err != nil {
		log.Fatal(err)
	}
	table.Add("shared memory (atomic array)",
		fmt.Sprintf("%d", smRes.CircuitHeight), fmt.Sprintf("%d", smRes.Occupancy),
		time.Since(start).Round(time.Millisecond).String(), "-")

	// Message passing: private views, explicit updates over channels.
	px, py := geom.SquarestFactors(procs)
	part, err := geom.NewPartition(c.Grid, px, py)
	if err != nil {
		log.Fatal(err)
	}
	asn := assign.AssignThreshold(c, part, 1000)
	mpCfg := mp.DefaultConfig(mp.SenderInitiated(2, 10))
	mpCfg.Procs = procs
	start = time.Now()
	mpRes, err := mp.RunLive(c, asn, mpCfg)
	if err != nil {
		log.Fatal(err)
	}
	table.Add("message passing (channels)",
		fmt.Sprintf("%d", mpRes.CircuitHeight), fmt.Sprintf("%d", mpRes.Occupancy),
		time.Since(start).Round(time.Millisecond).String(),
		fmt.Sprintf("%d", mpRes.UpdateBytes))

	fmt.Println(table)
	fmt.Println("the shared memory program relies on the hardware (here: atomic word")
	fmt.Println("access) for consistency; the message passing program buys whatever")
	fmt.Println("consistency its update schedule pays for, in marshalled bytes.")
}

// Scaling: grow the processor count and watch the paper's Section 5.4
// effects — speedup, quality degradation from parallel staleness, and the
// non-monotone network traffic curve (the shape of the paper's Table 6).
// Each run constructs the simulated-mesh backend through pkg/locusroute.
//
//	go run ./examples/scaling
package main

import (
	"context"
	"fmt"
	"log"

	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/metrics"
	"locusroute/pkg/locusroute"
)

func main() {
	log.SetFlags(0)

	c, err := circuit.Generate(circuit.BnrELike(1))
	if err != nil {
		log.Fatal(err)
	}

	table := metrics.NewTable(
		fmt.Sprintf("processor scaling on %s (sender initiated SRD=2 SLD=10)", c.Name),
		"Procs", "Mesh", "Ckt Ht.", "Occup.", "MBytes", "Time (s)", "Speedup")
	// Speedup uses the paper's definition: relative to the two-processor
	// run, multiplied by two (a one-processor "message passing" run has
	// no distribution and its locality assignment is degenerate).
	var base float64
	for _, procs := range []int{1, 2, 4, 9, 16} {
		px, py := geom.SquarestFactors(procs)
		backend, err := locusroute.NewMessagePassing(locusroute.WithProcs(procs))
		if err != nil {
			log.Fatal(err)
		}
		res, err := backend.Route(context.Background(), locusroute.Request{Circuit: c})
		if err != nil {
			log.Fatal(err)
		}
		secs := res.MP.Time.Seconds()
		if procs == 2 {
			base = secs
		}
		speedup := "-"
		if base > 0 {
			speedup = metrics.Ratio(base / secs * 2)
		}
		table.Add(
			fmt.Sprintf("%d", procs),
			fmt.Sprintf("%dx%d", px, py),
			fmt.Sprintf("%d", res.CircuitHeight),
			fmt.Sprintf("%d", res.Occupancy),
			fmt.Sprintf("%.3f", res.MP.MBytes()),
			metrics.Seconds(secs),
			speedup)
	}
	fmt.Println(table)
	fmt.Println("quality degrades with processors because more wires are routed against")
	fmt.Println("stale views; traffic peaks at small counts then falls as owned regions")
	fmt.Println("shrink and bounding-box updates carry fewer wasted bytes (Section 5.4).")
}

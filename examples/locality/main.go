// Locality: sweep the ThresholdCost wire assignment knob (Section 4.2 of
// the paper) and show its three-way tension — locality vs load balance vs
// traffic — in both paradigms (the shape of the paper's Tables 4 and 5).
// Each assignment is one option on the two pkg/locusroute backends; the
// same option list drives the message passing mesh and the traced shared
// memory run whose reference trace feeds the coherence simulator.
//
//	go run ./examples/locality
package main

import (
	"context"
	"fmt"
	"log"

	"locusroute/internal/assign"
	"locusroute/internal/cache"
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/metrics"
	"locusroute/pkg/locusroute"
)

func main() {
	log.SetFlags(0)

	c, err := circuit.Generate(circuit.MDCLike(1))
	if err != nil {
		log.Fatal(err)
	}
	const procs = 16
	px, py := geom.SquarestFactors(procs)
	part, err := geom.NewPartition(c.Grid, px, py)
	if err != nil {
		log.Fatal(err)
	}

	methods := []struct {
		label  string
		option locusroute.Option
		build  func() *assign.Assignment
	}{
		{"round robin", locusroute.WithRoundRobin(),
			func() *assign.Assignment { return assign.AssignRoundRobin(c, part) }},
		{"ThresholdCost=30", locusroute.WithThreshold(30),
			func() *assign.Assignment { return assign.AssignThreshold(c, part, 30) }},
		{"ThresholdCost=1000", locusroute.WithThreshold(1000),
			func() *assign.Assignment { return assign.AssignThreshold(c, part, 1000) }},
		{"ThresholdCost=inf", locusroute.WithPureLocality(),
			func() *assign.Assignment { return assign.AssignThreshold(c, part, assign.ThresholdInfinity) }},
	}

	table := metrics.NewTable(
		fmt.Sprintf("wire assignment locality on %s, %d processors", c.Name, procs),
		"Assignment", "Locality", "Imbalance",
		"MP Ckt Ht", "MP MBytes", "MP Time (s)",
		"SM Ckt Ht", "SM MBytes")
	for _, m := range methods {
		// The assignment itself, for the locality and imbalance columns
		// (the backends build their own copies from the same option).
		asn := m.build()
		loc := assign.LocalityMeasure(c, part, asn)

		mpBackend, err := locusroute.NewMessagePassing(locusroute.WithProcs(procs), m.option)
		if err != nil {
			log.Fatal(err)
		}
		mpRes, err := mpBackend.Route(context.Background(), locusroute.Request{Circuit: c})
		if err != nil {
			log.Fatal(err)
		}

		smBackend, err := locusroute.NewTracedSharedMemory(locusroute.WithProcs(procs), m.option)
		if err != nil {
			log.Fatal(err)
		}
		smRes, err := smBackend.Route(context.Background(), locusroute.Request{Circuit: c})
		if err != nil {
			log.Fatal(err)
		}
		traffic, err := cache.Replay(smRes.RefTrace, procs, 8)
		if err != nil {
			log.Fatal(err)
		}

		table.Add(m.label,
			fmt.Sprintf("%.2f", loc),
			metrics.Ratio(asn.Imbalance()),
			fmt.Sprintf("%d", mpRes.CircuitHeight),
			fmt.Sprintf("%.3f", mpRes.MP.MBytes()),
			metrics.Seconds(mpRes.MP.Time.Seconds()),
			fmt.Sprintf("%d", smRes.CircuitHeight),
			fmt.Sprintf("%.3f", traffic.MBytes()))
	}
	fmt.Println(table)
	fmt.Println("locality 0 would mean every wire is routed by the owner of its region;")
	fmt.Println("pure locality (inf) minimises hops but its load imbalance costs time —")
	fmt.Println("the best execution time sits between the extremes, as the paper found.")
}

// Locality: sweep the ThresholdCost wire assignment knob (Section 4.2 of
// the paper) and show its three-way tension — locality vs load balance vs
// traffic — in both paradigms (the shape of the paper's Tables 4 and 5).
//
//	go run ./examples/locality
package main

import (
	"fmt"
	"log"

	"locusroute/internal/assign"
	"locusroute/internal/cache"
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/metrics"
	"locusroute/internal/mp"
	"locusroute/internal/sm"
)

func main() {
	log.SetFlags(0)

	c, err := circuit.Generate(circuit.MDCLike(1))
	if err != nil {
		log.Fatal(err)
	}
	const procs = 16
	px, py := geom.SquarestFactors(procs)
	part, err := geom.NewPartition(c.Grid, px, py)
	if err != nil {
		log.Fatal(err)
	}

	methods := []struct {
		label string
		build func() *assign.Assignment
	}{
		{"round robin", func() *assign.Assignment { return assign.AssignRoundRobin(c, part) }},
		{"ThresholdCost=30", func() *assign.Assignment { return assign.AssignThreshold(c, part, 30) }},
		{"ThresholdCost=1000", func() *assign.Assignment { return assign.AssignThreshold(c, part, 1000) }},
		{"ThresholdCost=inf", func() *assign.Assignment { return assign.AssignThreshold(c, part, assign.ThresholdInfinity) }},
	}

	table := metrics.NewTable(
		fmt.Sprintf("wire assignment locality on %s, %d processors", c.Name, procs),
		"Assignment", "Locality", "Imbalance",
		"MP Ckt Ht", "MP MBytes", "MP Time (s)",
		"SM Ckt Ht", "SM MBytes")
	for _, m := range methods {
		asn := m.build()
		loc := assign.LocalityMeasure(c, part, asn)

		mpCfg := mp.DefaultConfig(mp.SenderInitiated(2, 10))
		mpCfg.Procs = procs
		mpRes, err := mp.Run(c, asn, mpCfg)
		if err != nil {
			log.Fatal(err)
		}

		smCfg := sm.DefaultConfig()
		smCfg.Procs = procs
		smCfg.Order = sm.Static
		smCfg.Assignment = asn
		smRes, trace, err := sm.RunTraced(c, smCfg)
		if err != nil {
			log.Fatal(err)
		}
		traffic, err := cache.Replay(trace, procs, 8)
		if err != nil {
			log.Fatal(err)
		}

		table.Add(m.label,
			fmt.Sprintf("%.2f", loc),
			metrics.Ratio(asn.Imbalance()),
			fmt.Sprintf("%d", mpRes.CircuitHeight),
			fmt.Sprintf("%.3f", mpRes.MBytes()),
			metrics.Seconds(mpRes.Time.Seconds()),
			fmt.Sprintf("%d", smRes.CircuitHeight),
			fmt.Sprintf("%.3f", traffic.MBytes()))
	}
	fmt.Println(table)
	fmt.Println("locality 0 would mean every wire is routed by the owner of its region;")
	fmt.Println("pure locality (inf) minimises hops but its load imbalance costs time —")
	fmt.Println("the best execution time sits between the extremes, as the paper found.")
}

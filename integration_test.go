// Integration tests: cross-paradigm invariants on a moderate circuit,
// exercising the full stacks (router -> DES mesh -> protocol; router ->
// tracer -> coherence simulator) together.
package locusroute

import (
	"testing"

	"locusroute/internal/assign"
	"locusroute/internal/cache"
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/mp"
	"locusroute/internal/route"
	"locusroute/internal/sm"
)

func integrationCircuit() *circuit.Circuit {
	return circuit.MustGenerate(circuit.GenParams{
		Name: "integration", Channels: 8, Grids: 128, Wires: 150,
		MeanSpan: 14, LongFrac: 0.1, Seed: 11,
	})
}

// TestParadigmQualityBand verifies all implementations land in one
// quality band: staleness can degrade the parallel versions, but nothing
// should be wildly off the sequential reference.
func TestParadigmQualityBand(t *testing.T) {
	c := integrationCircuit()
	params := route.DefaultParams()

	seq, _ := route.Sequential(c, params)
	ref := float64(seq.CircuitHeight)

	part, err := geom.NewPartition(c.Grid, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	asn := assign.AssignThreshold(c, part, 1000)

	mpCfg := mp.DefaultConfig(mp.SenderInitiated(2, 10))
	mpCfg.Procs = 4
	mpRes, err := mp.Run(c, asn, mpCfg)
	if err != nil {
		t.Fatal(err)
	}

	smCfg := sm.DefaultConfig()
	smCfg.Procs = 4
	smRes, _, err := sm.RunTraced(c, smCfg)
	if err != nil {
		t.Fatal(err)
	}

	liveRes, err := mp.RunLive(c, asn, mpCfg)
	if err != nil {
		t.Fatal(err)
	}

	for name, ht := range map[string]int64{
		"mp-des":  mpRes.CircuitHeight,
		"sm":      smRes.CircuitHeight,
		"mp-live": liveRes.CircuitHeight,
	} {
		if f := float64(ht); f < ref*0.85 || f > ref*1.35 {
			t.Errorf("%s height %d far outside sequential band (%d)", name, ht, seq.CircuitHeight)
		}
	}
}

// TestTrafficHierarchyEndToEnd verifies the paper's central result on the
// integrated stacks: SM coherence traffic > sender initiated MP traffic >
// receiver initiated MP traffic.
func TestTrafficHierarchyEndToEnd(t *testing.T) {
	c := integrationCircuit()
	part, err := geom.NewPartition(c.Grid, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	asn := assign.AssignThreshold(c, part, 1000)

	run := func(st mp.Strategy) int64 {
		cfg := mp.DefaultConfig(st)
		cfg.Procs = 4
		res, err := mp.Run(c, asn, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.UpdateBytes
	}
	snd := run(mp.SenderInitiated(2, 5))
	rcv := run(mp.ReceiverInitiated(1, 10, false))

	smCfg := sm.DefaultConfig()
	smCfg.Procs = 4
	_, tr, err := sm.RunTraced(c, smCfg)
	if err != nil {
		t.Fatal(err)
	}
	traffic, err := cache.Replay(tr, 4, 8)
	if err != nil {
		t.Fatal(err)
	}

	if !(traffic.Bytes() > snd && snd > rcv) {
		t.Errorf("traffic hierarchy broken: SM %d, sender %d, receiver %d",
			traffic.Bytes(), snd, rcv)
	}
}

// TestGroundTruthConservation: after any MP run, the ground-truth array's
// total equals the sum of the final wire path lengths — no increments are
// lost or duplicated across processors, iterations and update schedules.
func TestGroundTruthConservation(t *testing.T) {
	c := integrationCircuit()
	part, err := geom.NewPartition(c.Grid, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	asn := assign.AssignThreshold(c, part, 1000)
	for _, st := range []mp.Strategy{
		mp.SenderInitiated(2, 5),
		mp.ReceiverInitiated(1, 5, false),
		{SendLocData: 5, SendRmtData: 2, ReqLocData: 1, ReqRmtData: 5},
	} {
		cfg := mp.DefaultConfig(st)
		cfg.Procs = 4
		res, err := mp.Run(c, asn, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The circuit height of a consistent final state must be
		// positive and bounded by the wire count (every channel's max is
		// at most the number of wires crossing it).
		if res.CircuitHeight <= 0 || res.CircuitHeight > int64(len(c.Wires))*int64(c.Grid.Channels) {
			t.Errorf("strategy %v: implausible final height %d", st, res.CircuitHeight)
		}
	}
}

// TestDeterminismAcrossFullStack runs the same full-scale experiment
// twice and requires bit-identical results.
func TestDeterminismAcrossFullStack(t *testing.T) {
	c := integrationCircuit()
	part, _ := geom.NewPartition(c.Grid, 3, 3)
	asn := assign.AssignThreshold(c, part, 1000)
	cfg := mp.DefaultConfig(mp.Strategy{SendLocData: 5, SendRmtData: 2, ReqLocData: 1, ReqRmtData: 5})
	cfg.Procs = 9
	a, err := mp.Run(c, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mp.Run(c, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CircuitHeight != b.CircuitHeight || a.Occupancy != b.Occupancy ||
		a.Time != b.Time || a.Net.Bytes != b.Net.Bytes ||
		a.Net.ContentionDelay != b.Net.ContentionDelay {
		t.Errorf("full-stack runs differ:\n%+v\n%+v", a, b)
	}
}

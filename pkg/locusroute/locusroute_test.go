package locusroute

import (
	"context"
	"errors"
	"testing"
	"time"

	"locusroute/internal/assign"
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/mp"
	"locusroute/internal/obs"
	"locusroute/internal/route"
	"locusroute/internal/sm"
	"locusroute/internal/tracev"
)

// testCircuit generates a small circuit shared by the facade tests.
func testCircuit(t *testing.T) *Circuit {
	t.Helper()
	c, err := circuit.Generate(circuit.GenParams{
		Name: "facade", Channels: 6, Grids: 80, Wires: 60, MeanSpan: 10, LongFrac: 0.1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSequentialMatchesDirectCall pins the facade to the internal
// entrypoint it wraps: identical quality measures and final array.
func TestSequentialMatchesDirectCall(t *testing.T) {
	c := testCircuit(t)
	be, err := NewSequential()
	if err != nil {
		t.Fatal(err)
	}
	got, err := be.Route(context.Background(), Request{Circuit: c})
	if err != nil {
		t.Fatal(err)
	}
	want, arr := route.Sequential(c, route.DefaultParams())
	if got.CircuitHeight != want.CircuitHeight || got.Occupancy != want.Occupancy {
		t.Errorf("facade quality (%d, %d) != direct (%d, %d)",
			got.CircuitHeight, got.Occupancy, want.CircuitHeight, want.Occupancy)
	}
	if got.Final == nil || got.Final.CircuitHeight() != arr.CircuitHeight() {
		t.Errorf("facade final array missing or diverged")
	}
	if got.Backend != Sequential || got.Procs != 1 {
		t.Errorf("result metadata = (%s, %d), want (sequential, 1)", got.Backend, got.Procs)
	}
}

// TestMessagePassingMatchesDirectCall pins the MP DES facade wiring
// (default threshold-1000 assignment, standard sender initiated
// schedule) to the direct mp.Run call with the same configuration.
func TestMessagePassingMatchesDirectCall(t *testing.T) {
	c := testCircuit(t)
	const procs = 4
	be, err := NewMessagePassing(WithProcs(procs))
	if err != nil {
		t.Fatal(err)
	}
	got, err := be.Route(context.Background(), Request{Circuit: c})
	if err != nil {
		t.Fatal(err)
	}

	px, py := geom.SquarestFactors(procs)
	part, err := geom.NewPartition(c.Grid, px, py)
	if err != nil {
		t.Fatal(err)
	}
	asn := assign.AssignThreshold(c, part, 1000)
	cfg := mp.DefaultConfig(mp.SenderInitiated(2, 10))
	cfg.Procs = procs
	want, err := mp.Run(c, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.CircuitHeight != want.CircuitHeight || got.Occupancy != want.Occupancy {
		t.Errorf("facade quality (%d, %d) != direct (%d, %d)",
			got.CircuitHeight, got.Occupancy, want.CircuitHeight, want.Occupancy)
	}
	if got.SimTime != time.Duration(want.Time) {
		t.Errorf("facade sim time %v != direct %v", got.SimTime, want.Time)
	}
	if got.MP == nil || got.MP.UpdateBytes != want.UpdateBytes {
		t.Errorf("facade MP detail missing or diverged")
	}
}

// TestTracedSharedMemoryMatchesDirectCall pins the traced SM facade to
// sm.RunTraced with the dynamic distributed loop.
func TestTracedSharedMemoryMatchesDirectCall(t *testing.T) {
	c := testCircuit(t)
	be, err := NewTracedSharedMemory(WithProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	got, err := be.Route(context.Background(), Request{Circuit: c})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sm.DefaultConfig()
	cfg.Procs = 4
	want, tr, err := sm.RunTraced(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.CircuitHeight != want.CircuitHeight || got.Occupancy != want.Occupancy {
		t.Errorf("facade quality (%d, %d) != direct (%d, %d)",
			got.CircuitHeight, got.Occupancy, want.CircuitHeight, want.Occupancy)
	}
	if got.RefTrace == nil || got.RefTrace.Len() != tr.Len() {
		t.Errorf("facade reference trace missing or diverged")
	}
	if got.SimTime != time.Duration(want.Span) {
		t.Errorf("facade sim time %v != direct span %v", got.SimTime, want.Span)
	}
}

// TestLiveBackendsRoute smoke-tests the two goroutine runtimes through
// the facade (their results are timing-dependent, so only structural
// checks apply).
func TestLiveBackendsRoute(t *testing.T) {
	c := testCircuit(t)
	for _, kind := range []Kind{SMLive, MPLive} {
		be, err := New(kind, WithProcs(4))
		if err != nil {
			t.Fatal(err)
		}
		res, err := be.Route(context.Background(), Request{Circuit: c})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.CircuitHeight <= 0 || res.Occupancy <= 0 {
			t.Errorf("%s: degenerate quality (%d, %d)", kind, res.CircuitHeight, res.Occupancy)
		}
		if res.Final == nil {
			t.Errorf("%s: no final cost array", kind)
		}
	}
}

// TestOutsideGridRejected is the no-silent-clamping contract: a request
// wire with a pin outside the circuit grid fails with a typed error
// naming the wire and pin, on every backend.
func TestOutsideGridRejected(t *testing.T) {
	c := testCircuit(t)
	bad := *c
	bad.Wires = append(append([]Wire(nil), c.Wires...), Wire{
		ID:   9999,
		Pins: []Pin{geom.Pt(2, 2), geom.Pt(c.Grid.Grids+5, c.Grid.Channels+3)},
	})
	for _, kind := range Kinds() {
		be, err := New(kind, WithProcs(procsFor(kind)))
		if err != nil {
			t.Fatal(err)
		}
		_, err = be.Route(context.Background(), Request{Circuit: &bad})
		var oge *OutsideGridError
		if !errors.As(err, &oge) {
			t.Fatalf("%s: error %v, want *OutsideGridError", kind, err)
		}
		if oge.WireID != 9999 {
			t.Errorf("%s: error names wire %d, want 9999", kind, oge.WireID)
		}
	}
}

// procsFor returns a legal processor count per backend kind.
func procsFor(kind Kind) int {
	if kind == Sequential {
		return 1
	}
	return 4
}

// TestValidateWires covers the boundary validation directly.
func TestValidateWires(t *testing.T) {
	g := geom.Grid{Channels: 4, Grids: 10}
	ok := []Wire{{ID: 1, Pins: []Pin{geom.Pt(0, 0), geom.Pt(9, 3)}}}
	if err := ValidateWires(g, ok); err != nil {
		t.Errorf("in-grid wire rejected: %v", err)
	}
	if err := ValidateWires(g, []Wire{{ID: 2, Pins: []Pin{geom.Pt(0, 0)}}}); err == nil {
		t.Error("single-pin wire accepted")
	}
	err := ValidateWires(g, []Wire{{ID: 3, Pins: []Pin{geom.Pt(0, 0), geom.Pt(10, 0)}}})
	var oge *OutsideGridError
	if !errors.As(err, &oge) || oge.Pin != geom.Pt(10, 0) {
		t.Errorf("out-of-grid pin error = %v, want *OutsideGridError at (10,0)", err)
	}
}

// TestOptionRejection checks that inapplicable options fail at
// construction, not at Route time.
func TestOptionRejection(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"strategy on sequential", func() error {
			_, err := NewSequential(WithStrategy(SenderInitiated(2, 10)))
			return err
		}},
		{"procs on sequential", func() error {
			_, err := NewSequential(WithProcs(4))
			return err
		}},
		{"tracer on live MP", func() error {
			_, err := NewLiveMessagePassing(WithTracer(tracev.New(0)))
			return err
		}},
		{"topology on SM", func() error {
			_, err := NewSharedMemory(WithTopology(2, 2))
			return err
		}},
		{"dynamic order on MP", func() error {
			_, err := NewMessagePassing(WithDynamicOrder())
			return err
		}},
		{"zero procs", func() error {
			_, err := NewSharedMemory(WithProcs(0))
			return err
		}},
		{"unknown kind", func() error {
			_, err := New(Kind("quantum"))
			return err
		}},
	}
	for _, cse := range cases {
		if cse.err() == nil {
			t.Errorf("%s: constructor accepted an inapplicable configuration", cse.name)
		}
	}
}

// TestObserverCollectsRuns checks WithObserver appends one document per
// Route call with the backend and quality filled in.
func TestObserverCollectsRuns(t *testing.T) {
	c := testCircuit(t)
	col := obs.NewCollector()
	be, err := NewMessagePassing(WithProcs(4), WithObserver(col))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Route(context.Background(), Request{Circuit: c, Name: "row-1"}); err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot("test")
	if len(snap.Runs) != 1 {
		t.Fatalf("collector has %d runs, want 1", len(snap.Runs))
	}
	r := snap.Runs[0]
	if r.Name != "row-1" || r.Backend != string(MPDES) || r.Quality == nil {
		t.Errorf("run document = %+v, want name row-1, backend mp-des, quality set", r)
	}
	if len(r.Nodes) != 4 {
		t.Errorf("run document has %d node breakdowns, want 4", len(r.Nodes))
	}
}

// TestCancelledContext checks both pre-run and mid-run cancellation
// surfaces ctx.Err().
func TestCancelledContext(t *testing.T) {
	c := testCircuit(t)
	be, err := NewSequential()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := be.Route(ctx, Request{Circuit: c}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: err = %v, want context.Canceled", err)
	}
}

// TestIterationOverride checks the per-request override beats the
// configured iteration count.
func TestIterationOverride(t *testing.T) {
	c := testCircuit(t)
	be, err := NewSequential(WithIterations(1))
	if err != nil {
		t.Fatal(err)
	}
	one, err := be.Route(context.Background(), Request{Circuit: c})
	if err != nil {
		t.Fatal(err)
	}
	three, err := be.Route(context.Background(), Request{Circuit: c, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if one.WiresRouted != len(c.Wires) || three.WiresRouted != 3*len(c.Wires) {
		t.Errorf("wires routed = %d and %d, want %d and %d",
			one.WiresRouted, three.WiresRouted, len(c.Wires), 3*len(c.Wires))
	}
}

package locusroute

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

// reexportAllowlist pins the internal/backend exported names that
// pkg/locusroute deliberately does NOT re-export. Every entry must
// exist in internal/backend and must stay absent here — an entry that
// stops holding either way fails the test, so the list cannot rot.
var reexportAllowlist = map[string]string{
	// ScratchPool is the serving daemon's evaluation-scratch allocator;
	// embedders reach it through WithEvaluationPool, never directly.
	"ScratchPool": "locusd plumbing, not part of the public contract",
}

// exportedTopLevel parses the non-test files of dir and returns every
// exported package-level identifier: functions (not methods), types,
// consts and vars.
func exportedTopLevel(t *testing.T, dir string) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	names := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Recv == nil && d.Name.IsExported() {
						names[d.Name.Name] = true
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() {
								names[s.Name.Name] = true
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() {
									names[n.Name] = true
								}
							}
						}
					}
				}
			}
		}
	}
	return names
}

// TestReexportSurfaceParity pins that pkg/locusroute re-exports the
// internal/backend exported surface one-to-one: every exported name of
// the internal package appears here under the same name, except the
// pinned allowlist. A name added internally without a re-export (or an
// allowlist entry that goes stale) fails, so the shim cannot silently
// drift from the implementation it fronts.
func TestReexportSurfaceParity(t *testing.T) {
	internal := exportedTopLevel(t, "../../internal/backend")
	public := exportedTopLevel(t, ".")
	if len(internal) == 0 || len(public) == 0 {
		t.Fatal("parsed an empty exported surface; wrong directory?")
	}

	var missing []string
	for name := range internal {
		if public[name] || reexportAllowlist[name] != "" {
			continue
		}
		missing = append(missing, name)
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("internal/backend exports %v without a pkg/locusroute re-export; "+
			"re-export them or pin them in reexportAllowlist with a reason", missing)
	}

	for name, why := range reexportAllowlist {
		if !internal[name] {
			t.Errorf("allowlist entry %q (%s) no longer exists in internal/backend; drop it", name, why)
		}
		if public[name] {
			t.Errorf("allowlist entry %q (%s) is now re-exported; drop it from the allowlist", name, why)
		}
	}
}

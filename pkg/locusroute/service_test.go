package locusroute

import (
	"context"
	"errors"
	"testing"
	"time"

	"locusroute/internal/geom"
)

// serviceCircuit generates the small circuit shared by the Service
// facade tests.
func serviceCircuit(t *testing.T) *Circuit {
	t.Helper()
	c, err := BnrE(7)
	if err != nil {
		t.Fatalf("BnrE: %v", err)
	}
	return c
}

// TestServiceRoute stands up a Service through the public facade and
// routes one wire end to end.
func TestServiceRoute(t *testing.T) {
	c := serviceCircuit(t)
	svc, err := NewService([]*Circuit{c},
		WithShards(1),
		WithBatchWindow(time.Millisecond),
		WithMaxInFlight(8),
	)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()

	resp, err := svc.Route(context.Background(), ServiceRequest{Circuit: c.Name, Wire: c.Wires[0]})
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if resp.Circuit != c.Name {
		t.Errorf("resp.Circuit = %q, want %q", resp.Circuit, c.Name)
	}
	if resp.Cost <= 0 {
		t.Errorf("resp.Cost = %d, want > 0", resp.Cost)
	}
	if svc.InFlight() != 0 {
		t.Errorf("InFlight after Route = %d, want 0", svc.InFlight())
	}
}

// TestServicePolicyOptions verifies the functional options assemble the
// same chain the daemon's flags do: a result cache serves the repeat
// request, a commit advances the cost epoch, and the rate limiter
// rejects past its burst with the typed sentinel.
func TestServicePolicyOptions(t *testing.T) {
	c := serviceCircuit(t)
	svc, err := NewService([]*Circuit{c},
		WithShards(1),
		WithBatchWindow(time.Millisecond),
		WithResultCache(64),
		WithRateLimit(0.001, 2),
		WithEDFScheduling(),
	)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()

	req := ServiceRequest{Circuit: c.Name, Wire: c.Wires[0], Client: "svc-test"}
	first, err := svc.Route(context.Background(), req)
	if err != nil {
		t.Fatalf("first Route: %v", err)
	}
	if first.Cached {
		t.Error("first response claims cached")
	}
	second, err := svc.Route(context.Background(), req)
	if err != nil {
		t.Fatalf("second Route: %v", err)
	}
	if !second.Cached {
		t.Error("second identical request not served from the result cache")
	}
	if second.Cost != first.Cost {
		t.Errorf("cached cost %d != first cost %d", second.Cost, first.Cost)
	}
	if _, err := svc.Route(context.Background(), req); !errors.Is(err, ErrServiceRateLimited) {
		t.Errorf("third request past burst: err = %v, want ErrServiceRateLimited", err)
	}
	if got := svc.Epoch(c.Name); got != 0 {
		t.Errorf("Epoch before any commit = %d, want 0", got)
	}
}

// TestServiceEpochAdvancesOnCommit pins the cache invalidation contract:
// committing bumps the circuit's cost epoch, so later identical requests
// miss the cache and re-evaluate against the new congestion state.
func TestServiceEpochAdvancesOnCommit(t *testing.T) {
	c := serviceCircuit(t)
	svc, err := NewService([]*Circuit{c},
		WithShards(1),
		WithBatchWindow(time.Millisecond),
		WithResultCache(64),
	)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()

	req := ServiceRequest{Circuit: c.Name, Wire: c.Wires[1], Commit: true}
	if _, err := svc.Route(context.Background(), req); err != nil {
		t.Fatalf("commit Route: %v", err)
	}
	if got := svc.Epoch(c.Name); got != 1 {
		t.Fatalf("Epoch after one commit = %d, want 1", got)
	}
	// The epoch moved, so the identical request must be a cache miss.
	resp, err := svc.Route(context.Background(), req)
	if err != nil {
		t.Fatalf("post-commit Route: %v", err)
	}
	if resp.Cached {
		t.Error("request after a commit served from the stale cache epoch")
	}
}

// TestServiceDefaultDeadlineApplied pins the embedder regression: a
// Service caller routing with a plain context must pick up
// WithDefaultDeadline inside Route itself — the default was previously
// applied only by the HTTP layer, so embedded requests rode a zero
// deadline (least critical forever under EDF). Here the 100ms default
// must expire the request inside a 2s batch window instead of letting
// it wait the window out and be served.
func TestServiceDefaultDeadlineApplied(t *testing.T) {
	c := serviceCircuit(t)
	svc, err := NewService([]*Circuit{c},
		WithShards(1),
		WithBatchWindow(2*time.Second),
		WithDefaultDeadline(100*time.Millisecond),
		WithEDFScheduling(),
	)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()

	start := time.Now()
	_, err = svc.Route(context.Background(), ServiceRequest{Circuit: c.Name, Wire: c.Wires[0]})
	if !errors.Is(err, ErrServiceDeadline) {
		t.Fatalf("plain-context Route err = %v, want ErrServiceDeadline from the default deadline", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("default deadline fired after %v, want ~100ms (default not applied in Route)", elapsed)
	}
}

// TestServiceDeadlineAdmission verifies WithDeadlineAdmission rejects
// infeasible deadlines up front with the typed sentinel.
func TestServiceDeadlineAdmission(t *testing.T) {
	c := serviceCircuit(t)
	svc, err := NewService([]*Circuit{c},
		WithShards(1),
		WithDeadlineAdmission(10*time.Second),
		WithDefaultDeadline(time.Minute),
	)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err = svc.Route(ctx, ServiceRequest{Circuit: c.Name, Wire: c.Wires[0]})
	if !errors.Is(err, ErrServiceInfeasible) {
		t.Errorf("1s deadline under a 10s floor: err = %v, want ErrServiceInfeasible", err)
	}
}

// TestServiceLifecycleRestartIdentity drives the dynamic circuit
// lifecycle through the public facade alone: upload a circuit, mutate
// it, close (which snapshots the owned store), reopen a Service on the
// same directory, and require the replayed state to be identical — the
// same canonical-array hash and mutation epoch — and still routable.
func TestServiceLifecycleRestartIdentity(t *testing.T) {
	dir := t.TempDir()
	dyn := func() *Circuit {
		return &Circuit{
			Name: "dyn",
			Grid: geom.Grid{Channels: 5, Grids: 40},
			Wires: []Wire{
				{ID: 0, Pins: []Pin{{X: 2, Y: 1}, {X: 30, Y: 4}}},
				{ID: 1, Pins: []Pin{{X: 5, Y: 2}, {X: 20, Y: 3}}},
			},
		}
	}
	open := func() *Service {
		t.Helper()
		svc, err := NewService(nil,
			WithShards(1),
			WithBatchWindow(time.Millisecond),
			WithCircuitStore(dir),
		)
		if err != nil {
			t.Fatalf("NewService: %v", err)
		}
		return svc
	}

	svc := open()
	if _, err := svc.UploadCircuit(dyn()); err != nil {
		t.Fatalf("UploadCircuit: %v", err)
	}
	resp, err := svc.Mutate(MutateRequest{Circuit: "dyn", Ops: []StoreOp{
		{Kind: OpAdd, WireID: 2, Pins: []Pin{{X: 8, Y: 1}, {X: 35, Y: 2}}},
		{Kind: OpReroute, WireID: 0},
	}})
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	if resp.Epoch != 2 || len(resp.Results) != 2 {
		t.Fatalf("Mutate = epoch %d, %d results; want 2, 2", resp.Epoch, len(resp.Results))
	}
	before, ok := svc.StoreInfo("dyn")
	if !ok {
		t.Fatal("StoreInfo(dyn) missing before restart")
	}
	svc.Close()

	svc2 := open()
	defer svc2.Close()
	if rs := svc2.StoreRecovery(); rs.SnapshotCircuits == 0 && rs.ReplayedRecords == 0 {
		t.Errorf("StoreRecovery = %+v, want recovered state after restart", rs)
	}
	after, ok := svc2.StoreInfo("dyn")
	if !ok {
		t.Fatal("StoreInfo(dyn) missing after restart")
	}
	if after.ArrayHash != before.ArrayHash {
		t.Errorf("replayed array hash %s != pre-restart %s", after.ArrayHash, before.ArrayHash)
	}
	if after.Epoch != before.Epoch {
		t.Errorf("replayed epoch %d != pre-restart %d", after.Epoch, before.Epoch)
	}
	if _, err := svc2.Route(context.Background(), ServiceRequest{
		Circuit: "dyn",
		Wire:    Wire{ID: 9000, Pins: []Pin{{X: 3, Y: 1}, {X: 25, Y: 3}}},
	}); err != nil {
		t.Fatalf("Route against recovered circuit: %v", err)
	}
}

package locusroute

import (
	"context"
	"errors"
	"testing"
	"time"
)

// serviceCircuit generates the small circuit shared by the Service
// facade tests.
func serviceCircuit(t *testing.T) *Circuit {
	t.Helper()
	c, err := BnrE(7)
	if err != nil {
		t.Fatalf("BnrE: %v", err)
	}
	return c
}

// TestServiceRoute stands up a Service through the public facade and
// routes one wire end to end.
func TestServiceRoute(t *testing.T) {
	c := serviceCircuit(t)
	svc, err := NewService([]*Circuit{c},
		WithShards(1),
		WithBatchWindow(time.Millisecond),
		WithMaxInFlight(8),
	)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()

	resp, err := svc.Route(context.Background(), ServiceRequest{Circuit: c.Name, Wire: c.Wires[0]})
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if resp.Circuit != c.Name {
		t.Errorf("resp.Circuit = %q, want %q", resp.Circuit, c.Name)
	}
	if resp.Cost <= 0 {
		t.Errorf("resp.Cost = %d, want > 0", resp.Cost)
	}
	if svc.InFlight() != 0 {
		t.Errorf("InFlight after Route = %d, want 0", svc.InFlight())
	}
}

// TestServicePolicyOptions verifies the functional options assemble the
// same chain the daemon's flags do: a result cache serves the repeat
// request, a commit advances the cost epoch, and the rate limiter
// rejects past its burst with the typed sentinel.
func TestServicePolicyOptions(t *testing.T) {
	c := serviceCircuit(t)
	svc, err := NewService([]*Circuit{c},
		WithShards(1),
		WithBatchWindow(time.Millisecond),
		WithResultCache(64),
		WithRateLimit(0.001, 2),
		WithEDFScheduling(),
	)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()

	req := ServiceRequest{Circuit: c.Name, Wire: c.Wires[0], Client: "svc-test"}
	first, err := svc.Route(context.Background(), req)
	if err != nil {
		t.Fatalf("first Route: %v", err)
	}
	if first.Cached {
		t.Error("first response claims cached")
	}
	second, err := svc.Route(context.Background(), req)
	if err != nil {
		t.Fatalf("second Route: %v", err)
	}
	if !second.Cached {
		t.Error("second identical request not served from the result cache")
	}
	if second.Cost != first.Cost {
		t.Errorf("cached cost %d != first cost %d", second.Cost, first.Cost)
	}
	if _, err := svc.Route(context.Background(), req); !errors.Is(err, ErrServiceRateLimited) {
		t.Errorf("third request past burst: err = %v, want ErrServiceRateLimited", err)
	}
	if got := svc.Epoch(c.Name); got != 0 {
		t.Errorf("Epoch before any commit = %d, want 0", got)
	}
}

// TestServiceEpochAdvancesOnCommit pins the cache invalidation contract:
// committing bumps the circuit's cost epoch, so later identical requests
// miss the cache and re-evaluate against the new congestion state.
func TestServiceEpochAdvancesOnCommit(t *testing.T) {
	c := serviceCircuit(t)
	svc, err := NewService([]*Circuit{c},
		WithShards(1),
		WithBatchWindow(time.Millisecond),
		WithResultCache(64),
	)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()

	req := ServiceRequest{Circuit: c.Name, Wire: c.Wires[1], Commit: true}
	if _, err := svc.Route(context.Background(), req); err != nil {
		t.Fatalf("commit Route: %v", err)
	}
	if got := svc.Epoch(c.Name); got != 1 {
		t.Fatalf("Epoch after one commit = %d, want 1", got)
	}
	// The epoch moved, so the identical request must be a cache miss.
	resp, err := svc.Route(context.Background(), req)
	if err != nil {
		t.Fatalf("post-commit Route: %v", err)
	}
	if resp.Cached {
		t.Error("request after a commit served from the stale cache epoch")
	}
}

// TestServiceDefaultDeadlineApplied pins the embedder regression: a
// Service caller routing with a plain context must pick up
// WithDefaultDeadline inside Route itself — the default was previously
// applied only by the HTTP layer, so embedded requests rode a zero
// deadline (least critical forever under EDF). Here the 100ms default
// must expire the request inside a 2s batch window instead of letting
// it wait the window out and be served.
func TestServiceDefaultDeadlineApplied(t *testing.T) {
	c := serviceCircuit(t)
	svc, err := NewService([]*Circuit{c},
		WithShards(1),
		WithBatchWindow(2*time.Second),
		WithDefaultDeadline(100*time.Millisecond),
		WithEDFScheduling(),
	)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()

	start := time.Now()
	_, err = svc.Route(context.Background(), ServiceRequest{Circuit: c.Name, Wire: c.Wires[0]})
	if !errors.Is(err, ErrServiceDeadline) {
		t.Fatalf("plain-context Route err = %v, want ErrServiceDeadline from the default deadline", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("default deadline fired after %v, want ~100ms (default not applied in Route)", elapsed)
	}
}

// TestServiceDeadlineAdmission verifies WithDeadlineAdmission rejects
// infeasible deadlines up front with the typed sentinel.
func TestServiceDeadlineAdmission(t *testing.T) {
	c := serviceCircuit(t)
	svc, err := NewService([]*Circuit{c},
		WithShards(1),
		WithDeadlineAdmission(10*time.Second),
		WithDefaultDeadline(time.Minute),
	)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err = svc.Route(ctx, ServiceRequest{Circuit: c.Name, Wire: c.Wires[0]})
	if !errors.Is(err, ErrServiceInfeasible) {
		t.Errorf("1s deadline under a 10s floor: err = %v, want ErrServiceInfeasible", err)
	}
}

package locusroute

import (
	"locusroute/internal/backend"
	"locusroute/internal/obs"
	"locusroute/internal/route"
	"locusroute/internal/tracev"
)

// Option configures a backend at construction time. Each constructor
// validates the assembled configuration against what its backend
// supports and rejects inapplicable options with an error.
type Option = backend.Option

// WithProcs sets the processor count (goroutines, logical processes or
// simulated mesh nodes, per backend). Backends default to the paper's 16;
// the sequential backend is always 1 and rejects any other value.
func WithProcs(n int) Option { return backend.WithProcs(n) }

// WithIterations sets the rip-up-and-reroute iteration count (the paper
// uses 3). Requests may still override it per call.
func WithIterations(n int) Option { return backend.WithIterations(n) }

// WithRouter replaces the full router parameter set (candidate bounds,
// detour channels). WithIterations still applies on top.
func WithRouter(p route.Params) Option { return backend.WithRouter(p) }

// WithDynamicOrder selects the shared memory distributed loop: processes
// repeatedly take the next wire from a shared counter (the paper's
// baseline, and the default). Shared memory backends only.
func WithDynamicOrder() Option { return backend.WithDynamicOrder() }

// WithRoundRobin distributes wires round-robin across processors,
// ignoring locality (the paper's load-balance-only extreme).
func WithRoundRobin() Option { return backend.WithRoundRobin() }

// WithThreshold assigns wires cheaper than cost to the owner of their
// leftmost pin and longer wires by load balance (Section 4.2; the
// paper's compromise is cost 1000, the message passing default).
func WithThreshold(cost int) Option { return backend.WithThreshold(cost) }

// WithPureLocality assigns every wire to the owner of its leftmost pin
// (ThresholdCost = infinity): minimal traffic, worst load balance.
func WithPureLocality() Option { return backend.WithPureLocality() }

// WithStrategy sets the message passing update schedule. Message passing
// backends only; the default is the paper's standard sender initiated
// schedule, SenderInitiated(2, 10).
func WithStrategy(st Strategy) Option { return backend.WithStrategy(st) }

// WithBlocking makes receiver initiated requests blocking (Section
// 5.1.3). It adjusts the configured strategy, so it composes with
// WithStrategy in either order.
func WithBlocking() Option { return backend.WithBlocking() }

// PacketStructure aliases the update packet structure ablation
// (Section 4.3.1).
type PacketStructure = backend.PacketStructure

// Packet structure values for WithPackets.
const (
	PacketsBbox        = backend.PacketsBbox
	PacketsWireBased   = backend.PacketsWireBased
	PacketsWholeRegion = backend.PacketsWholeRegion
)

// WithPackets selects the update packet structure (default bounding
// box, the paper's choice). Message passing backends only.
func WithPackets(ps PacketStructure) Option { return backend.WithPackets(ps) }

// WithTopology replaces the squarest 2-D mesh with a general k-ary
// n-cube interconnect shape; the dimensions must multiply to the
// processor count. Message passing DES backend only.
func WithTopology(dims ...int) Option { return backend.WithTopology(dims...) }

// WithDynamicWires enables the dynamic wire assignment ablation
// (Section 4.2): processors request wires from node 0 over the network.
// Message passing DES backend only.
func WithDynamicWires() Option { return backend.WithDynamicWires() }

// WithStrictOwnership enables the strict region ownership ablation
// (Section 4.1): no replicated views, routing tasks cross region
// boundaries instead of update packets. Forces the pure-locality
// assignment. Message passing DES backend only.
func WithStrictOwnership() Option { return backend.WithStrictOwnership() }

// WithPartitions sets the partitioned backend's leaf-region count:
// recursive bisection splits the grid into n regions routed
// concurrently. 1 reproduces the sequential backend bit-for-bit; the
// default is 4, a machine-independent constant so the routing stays a
// pure function of its inputs. Partitioned backend only.
func WithPartitions(n int) Option { return backend.WithPartitions(n) }

// Negotiated aliases the negotiated-congestion schedule configuration:
// pres_fac start/multiplier/cap, history increment, cell capacity, and
// the pass bound. The zero value of every field selects its default.
type Negotiated = backend.Negotiated

// WithNegotiatedCongestion switches routing to the PathFinder/VPR-style
// negotiated-congestion schedule: a first pass routes by length, later
// passes escalate a present-congestion factor, charge history to cells
// that stay overused, and rip up only the wires crossing them. Applies
// to the sequential and partitioned backends; it is orthogonal to
// partitioning.
func WithNegotiatedCongestion(n Negotiated) Option { return backend.WithNegotiatedCongestion(n) }

// WithObserver attaches a collector: every Route appends its run's
// observability document (quality, per-node times, traffic, phases) to
// col. The run itself is byte-identical with or without an observer.
func WithObserver(col *obs.Collector) Option { return backend.WithObserver(col) }

// WithTracer attaches an event-level recorder to the message passing
// DES backend. A tracer is confined to one run — a backend constructed
// with one must not Route concurrently.
func WithTracer(tr *tracev.Tracer) Option { return backend.WithTracer(tr) }

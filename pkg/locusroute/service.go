package locusroute

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"locusroute/internal/locusd"
	"locusroute/internal/par"
	"locusroute/internal/policy"
	"locusroute/internal/reqtrace"
	"locusroute/internal/route"
	"locusroute/internal/store"
)

// Service is the embeddable form of the locusd routing daemon: the
// sharded batch-serving layer plus the composable policy chain, behind
// the same functional-option style as the Backend constructors. An
// embedder gets exactly the request path cmd/locusd serves — deadline
// admission, per-client rate limiting, circuit breaking, result
// caching, and criticality-aware (EDF) scheduling — without shelling
// out to the daemon.
//
//	svc, err := locusroute.NewService([]*locusroute.Circuit{c},
//		locusroute.WithShards(4),
//		locusroute.WithRateLimit(100, 20),
//		locusroute.WithResultCache(4096),
//		locusroute.WithEDFScheduling(),
//	)
//	resp, err := svc.Route(ctx, locusroute.ServiceRequest{Circuit: c.Name, Wire: w})
//
// Close the service to drain it; its Handler serves the same HTTP API
// as cmd/locusd (/route, /circuits, /healthz, /metrics, /debug/vars).
type Service struct {
	srv *locusd.Server
	// owned is the circuit store NewService opened on the embedder's
	// behalf (WithCircuitStore / WithStoreMemoryBudget); Close closes it
	// after the server drains, which snapshots persistent state.
	owned *store.Store
}

// ServiceRequest and ServiceResponse alias the service request/response
// documents so embedders never import internal packages.
type (
	ServiceRequest  = locusd.RouteRequest
	ServiceResponse = locusd.RouteResponse
)

// Service error sentinels, re-exported for errors.Is on Route failures.
var (
	// ErrServiceDeadline reports a request whose deadline expired while
	// queued or mid-batch.
	ErrServiceDeadline = locusd.ErrDeadline
	// ErrServiceShed reports a request shed at the admission gate.
	ErrServiceShed = locusd.ErrShed
	// ErrServiceEvicted reports a queued request preempted by a more
	// critical arrival under EDF scheduling.
	ErrServiceEvicted = policy.ErrEvicted
	// ErrServiceRateLimited reports a request over its client's rate.
	ErrServiceRateLimited = policy.ErrRateLimited
	// ErrServiceBreakerOpen reports a request rejected by the open
	// circuit breaker.
	ErrServiceBreakerOpen = policy.ErrBreakerOpen
	// ErrServiceInfeasible reports a request whose deadline slack was
	// below the admission floor.
	ErrServiceInfeasible = policy.ErrDeadlineInfeasible
	// ErrServiceUnknownCircuit reports a request, mutation or eviction
	// naming a circuit the service does not serve.
	ErrServiceUnknownCircuit = locusd.ErrUnknownCircuit
	// ErrServiceCircuitExists reports an upload reusing a served name.
	ErrServiceCircuitExists = locusd.ErrCircuitExists
	// ErrServiceImmutable reports a mutation or eviction of a circuit
	// that is not store-backed (non-sequential startup baselines).
	ErrServiceImmutable = locusd.ErrImmutable
	// ErrServiceStoreFull reports an upload over the store memory budget.
	ErrServiceStoreFull = store.ErrStoreFull
	// ErrServiceBadMutation reports a rejected mutation batch; the
	// circuit is unchanged.
	ErrServiceBadMutation = store.ErrBadOp
)

// Dynamic circuit lifecycle types, aliased so embedders never import
// internal packages.
type (
	// StoreInfo describes one store-held circuit (grid, wire count,
	// mutation epoch, resident bytes, baseline, canonical array hash).
	StoreInfo = store.Info
	// StoreOp is one mutation operation (OpAdd / OpRemove / OpReroute).
	StoreOp = store.Op
	// StoreOpKind is a mutation operation's kind.
	StoreOpKind = store.OpKind
	// RecoveryStats reports what a persistent store reconstructed at
	// startup: snapshot circuits, replayed WAL records, torn-tail
	// truncation.
	RecoveryStats = store.RecoveryStats
	// MutateRequest is one atomic mutation batch against a served
	// circuit.
	MutateRequest = locusd.MutateRequest
	// MutateResponse reports an applied mutation batch.
	MutateResponse = locusd.MutateResponse
	// MutateOpResult reports one applied mutation op.
	MutateOpResult = locusd.MutateOpResult
)

// Mutation op kinds.
const (
	// OpAdd routes and commits a new wire (pins required).
	OpAdd = store.OpAdd
	// OpRemove rips up and deletes a wire.
	OpRemove = store.OpRemove
	// OpReroute rips up a wire and re-routes it against current
	// congestion (empty pins keep the wire's pins).
	OpReroute = store.OpReroute
)

// ServiceOption configures a Service at construction time.
type ServiceOption func(*serviceConfig)

// serviceConfig accumulates the options over locusd's config.
type serviceConfig struct {
	cfg locusd.Config
	// trace accumulates WithRequestTracing/WithSlowLog; the tracer is
	// built once in NewService when either option enabled it.
	trace   reqtrace.Options
	traceOn bool
	// storeDir/storeMem accumulate WithCircuitStore and
	// WithStoreMemoryBudget; the store is opened once in NewService when
	// either option asked for one.
	storeDir string
	storeMem int64
	storeOn  bool
}

// WithServiceBackend selects the backend that routes each circuit once
// at startup to produce the baseline congestion state (default
// Sequential), and its processor count where applicable.
func WithServiceBackend(kind Kind, procs int) ServiceOption {
	return func(c *serviceConfig) { c.cfg.Backend = kind; c.cfg.Procs = procs }
}

// WithShards sets the serving replicas per circuit (default 4).
func WithShards(n int) ServiceOption {
	return func(c *serviceConfig) { c.cfg.Shards = n }
}

// WithBatchWindow sets how long a shard waits to grow a batch after its
// first request arrives (default 2ms).
func WithBatchWindow(d time.Duration) ServiceOption {
	return func(c *serviceConfig) { c.cfg.BatchWindow = d }
}

// WithMaxBatch caps the wires evaluated in one batch (default 64).
func WithMaxBatch(n int) ServiceOption {
	return func(c *serviceConfig) { c.cfg.MaxBatch = n }
}

// WithMaxInFlight bounds admitted requests before shedding (default 256).
func WithMaxInFlight(n int) ServiceOption {
	return func(c *serviceConfig) { c.cfg.MaxInFlight = n }
}

// WithDefaultDeadline applies to requests carrying no deadline
// (default 5s).
func WithDefaultDeadline(d time.Duration) ServiceOption {
	return func(c *serviceConfig) { c.cfg.DefaultDeadline = d }
}

// WithEvaluationPool bounds concurrent batch evaluations to n workers
// (unset = unbounded).
func WithEvaluationPool(n int) ServiceOption {
	return func(c *serviceConfig) { c.cfg.Pool = par.New(n) }
}

// WithServiceRouter tunes the route kernel parameters.
func WithServiceRouter(p route.Params) ServiceOption {
	return func(c *serviceConfig) { c.cfg.Router = p }
}

// WithDeadlineAdmission enables the deadline-admission element:
// requests whose deadline slack is below floor are rejected up front
// with ErrServiceInfeasible instead of queueing toward a guaranteed
// timeout.
func WithDeadlineAdmission(floor time.Duration) ServiceOption {
	return func(c *serviceConfig) { c.cfg.Policy.AdmitFloor = floor }
}

// WithRateLimit enables per-client token-bucket rate limiting at rate
// requests/second with the given burst (burst < 1 = ceil(rate)).
func WithRateLimit(rate float64, burst int) ServiceOption {
	return func(c *serviceConfig) { c.cfg.Policy.RatePerSec = rate; c.cfg.Policy.Burst = burst }
}

// WithCircuitBreaker enables the circuit breaker: failures consecutive
// deadline expiries trip it open for cooldown.
func WithCircuitBreaker(failures int, cooldown time.Duration) ServiceOption {
	return func(c *serviceConfig) {
		c.cfg.Policy.BreakerFailures = failures
		c.cfg.Policy.BreakerCooldown = cooldown
	}
}

// WithResultCache enables the result cache with the given capacity,
// keyed by (circuit, wire set, cost epoch) — commits invalidate by
// advancing the epoch.
func WithResultCache(entries int) ServiceOption {
	return func(c *serviceConfig) { c.cfg.Policy.CacheEntries = entries }
}

// WithEDFScheduling enables the criticality scheduler:
// earliest-deadline-first ordering inside the batch window and
// least-critical-first shedding at a full admission gate.
func WithEDFScheduling() ServiceOption {
	return func(c *serviceConfig) { c.cfg.Policy.EDF = true }
}

// WithRequestTracing enables request-lifecycle tracing: every request
// gets a process-unique id (or adopts the caller's, via the
// X-Locus-Request-Id header or the binary protocol's traced frames),
// its response carries the per-stage latency breakdown, per-stage
// histograms appear in /metrics, and /debug/trace serves live
// Chrome/Perfetto captures. sampleEveryN retains every Nth finished
// request in the capture ring (1 = all, 0 = only live-capture windows).
func WithRequestTracing(sampleEveryN int) ServiceOption {
	return func(c *serviceConfig) {
		c.traceOn = true
		c.trace.Sample = sampleEveryN
	}
}

// WithSlowLog enables the structured slow-request log: any request whose
// wall latency meets threshold is logged with its full stage breakdown.
// A nil logger uses slog.Default. Implies request tracing.
func WithSlowLog(threshold time.Duration, logger *slog.Logger) ServiceOption {
	return func(c *serviceConfig) {
		c.traceOn = true
		c.trace.SlowLog = threshold
		c.trace.Logger = logger
	}
}

// WithPProf mounts net/http/pprof on the service's Handler under
// /debug/pprof/ (off by default).
func WithPProf() ServiceOption {
	return func(c *serviceConfig) { c.cfg.EnablePProf = true }
}

// WithCircuitStore enables snapshot+WAL persistence for the dynamic
// circuit lifecycle, rooted at dir: committed uploads, mutations and
// evictions are durable, and a restarted service reconstructs the exact
// canonical cost arrays (StoreRecovery reports what was rebuilt). The
// lifecycle API works without this option too — circuits just live in
// memory only.
func WithCircuitStore(dir string) ServiceOption {
	return func(c *serviceConfig) { c.storeDir = dir; c.storeOn = true }
}

// WithStoreMemoryBudget bounds the resident bytes of store-held
// circuits; uploads beyond it fail with ErrServiceStoreFull until
// evictions free room (0 = unbounded).
func WithStoreMemoryBudget(bytes int64) ServiceOption {
	return func(c *serviceConfig) { c.storeMem = bytes; c.storeOn = true }
}

// NewService routes every circuit once through the configured baseline
// backend and stands up the serving service with its policy chain.
func NewService(circuits []*Circuit, opts ...ServiceOption) (*Service, error) {
	var c serviceConfig
	for _, o := range opts {
		o(&c)
	}
	if c.traceOn {
		c.cfg.Tracer = reqtrace.New(c.trace)
	}
	var owned *store.Store
	if c.storeOn {
		// The store's router parameters must match the serving layer's,
		// or replicas would diverge from the canonical arrays; locusd
		// applies the same default when cfg.Router is zero.
		params := c.cfg.Router
		if params.Iterations == 0 {
			params = route.DefaultParams()
		}
		st, err := store.Open(store.Config{Dir: c.storeDir, Router: params, MemBudget: c.storeMem})
		if err != nil {
			return nil, err
		}
		owned = st
		c.cfg.Store = st
	}
	srv, err := locusd.New(c.cfg, circuits...)
	if err != nil {
		if owned != nil {
			_ = owned.Close()
		}
		return nil, err
	}
	return &Service{srv: srv, owned: owned}, nil
}

// Route admits, dispatches and awaits one request through the policy
// chain. The context deadline is the request's criticality under EDF.
func (s *Service) Route(ctx context.Context, req ServiceRequest) (ServiceResponse, error) {
	return s.srv.Route(ctx, req)
}

// Handler returns the service's HTTP API, identical to cmd/locusd's.
func (s *Service) Handler() http.Handler { return s.srv.Handler() }

// InFlight reports currently admitted requests.
func (s *Service) InFlight() int { return s.srv.InFlight() }

// Draining reports whether BeginDrain has been called.
func (s *Service) Draining() bool { return s.srv.Draining() }

// Epoch reports a served circuit's cost epoch (its commit count).
func (s *Service) Epoch(circuitName string) uint64 { return s.srv.Epoch(circuitName) }

// BeginDrain stops admitting new requests; in-flight work completes.
func (s *Service) BeginDrain() { s.srv.BeginDrain() }

// UploadCircuit routes and serves a new circuit at runtime. The upload
// is durable when the service has a persistent circuit store.
func (s *Service) UploadCircuit(c *Circuit) (StoreInfo, error) { return s.srv.UploadCircuit(c) }

// EvictCircuit stops serving a circuit and removes it from the store;
// in-flight requests against it complete first, and the name is free
// for re-upload once EvictCircuit returns.
func (s *Service) EvictCircuit(name string) error { return s.srv.EvictCircuit(name) }

// Mutate applies one atomic mutation batch to a served circuit,
// incrementally — each op rips up and re-routes only its own wire —
// and invalidates cached results for the circuit.
func (s *Service) Mutate(req MutateRequest) (*MutateResponse, error) { return s.srv.Mutate(req) }

// StoreRecovery reports what the service's circuit store reconstructed
// at startup (zero value without persistence).
func (s *Service) StoreRecovery() RecoveryStats { return s.srv.Store().Recovery() }

// StoreInfo reports a store-held circuit's current state — mutation
// epoch, resident bytes, and the canonical cost array's hash, which is
// what restart-identity checks compare.
func (s *Service) StoreInfo(name string) (StoreInfo, bool) { return s.srv.Store().Get(name) }

// Close drains and stops the service, returning once every shard loop
// has exited; a store opened by WithCircuitStore is then closed, which
// snapshots its state.
func (s *Service) Close() {
	s.srv.Close()
	if s.owned != nil {
		_ = s.owned.Close()
	}
}

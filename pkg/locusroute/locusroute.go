// Package locusroute is the public programmatic entrypoint to the
// LocusRoute reproduction: one Backend interface over the four ways of
// running the same routing workload that the paper compares (Martonosi &
// Gupta, ICPP 1989), so commands, services and examples construct
// backends through a single API instead of wiring each implementation by
// hand.
//
// A Backend is built once with functional options and then routes any
// number of circuits:
//
//	be, err := locusroute.NewMessagePassing(
//		locusroute.WithProcs(16),
//		locusroute.WithStrategy(locusroute.SenderInitiated(2, 10)),
//	)
//	res, err := be.Route(ctx, locusroute.Request{Circuit: c})
//
// Backends are immutable after construction and safe for concurrent
// Route calls (each call builds its own run state), with one exception:
// WithTracer attaches a single event recorder, which confines the
// backend to one traced run at a time.
//
// Requests are validated, never clamped: a circuit wire with a pin
// outside the grid fails Route with an *OutsideGridError instead of
// being silently moved in bounds the way the synthetic generator does
// with its own draws.
//
// Beyond one-shot backends, NewService stands up the serving layer —
// sharded batch evaluation with a composable request-path policy chain
// (deadline admission, rate limiting, circuit breaking, result caching,
// EDF scheduling); see Service.
//
// The implementation lives in internal/backend; this package re-exports
// that surface one-to-one so the serving daemon and embedders share a
// single behavioural contract.
package locusroute

import (
	"io"

	"locusroute/internal/backend"
)

// Kind identifies one of the six backend implementations.
type Kind = backend.Kind

const (
	// Sequential is the uniprocessor reference router.
	Sequential = backend.Sequential
	// SMLive is the shared memory router on real goroutines and one
	// atomic cost array.
	SMLive = backend.SMLive
	// SMTraced is the Tango-style multiplexed shared memory router that
	// records every shared reference for the coherence simulator.
	SMTraced = backend.SMTraced
	// MPDES is the message passing router on the simulated mesh
	// (discrete-event simulation; reports simulated time and traffic).
	MPDES = backend.MPDES
	// MPLive is the message passing router on real goroutines whose only
	// interaction is marshalled packets over channels.
	MPLive = backend.MPLive
	// Partitioned is the partition-parallel router: a recursive bisection
	// of the grid whose leaf regions route concurrently on one shared
	// cost array, with boundary-crossing wires reconciled serially at
	// each tree level. One partition is bit-identical to Sequential.
	Partitioned = backend.Partitioned
)

// Kinds lists every backend kind in a stable order.
func Kinds() []Kind { return backend.Kinds() }

// Circuit, Wire and Pin alias the repository's circuit model so callers
// of the public API can name them without reaching into internal
// packages.
type (
	Circuit = backend.Circuit
	Wire    = backend.Wire
	Pin     = backend.Pin
)

// Strategy aliases the message passing update schedule (see the paper's
// Figure 3 taxonomy).
type Strategy = backend.Strategy

// SenderInitiated returns the pure sender initiated schedule of the
// paper's Table 1; the standard schedule is SenderInitiated(2, 10).
func SenderInitiated(sendRmt, sendLoc int) Strategy { return backend.SenderInitiated(sendRmt, sendLoc) }

// ReceiverInitiated returns the pure receiver initiated schedule of
// Table 2, blocking or not (Section 5.1.3).
func ReceiverInitiated(reqLoc, reqRmt int, blocking bool) Strategy {
	return backend.ReceiverInitiated(reqLoc, reqRmt, blocking)
}

// BnrE generates the synthetic stand-in for the paper's bnrE benchmark
// (420 wires, 10 channels x 341 grids) from the given seed.
func BnrE(seed int64) (*Circuit, error) { return backend.BnrE(seed) }

// MDC generates the synthetic stand-in for the paper's MDC benchmark
// (573 wires, 12 channels x 386 grids) from the given seed.
func MDC(seed int64) (*Circuit, error) { return backend.MDC(seed) }

// ReadCircuit parses a circuit from the repository's text format and
// validates it.
func ReadCircuit(r io.Reader) (*Circuit, error) { return backend.ReadCircuit(r) }

// Request asks a backend to route one circuit.
type Request = backend.Request

// OutsideGridError reports a request wire whose pin lies outside the
// loaded circuit's grid.
type OutsideGridError = backend.OutsideGridError

// ErrNoCircuit is returned by Route when the request has no circuit.
var ErrNoCircuit = backend.ErrNoCircuit

// ValidateRequest checks a request the way every backend's Route does:
// the circuit must be present, structurally valid, and every wire pin
// inside the grid. Exposed so admission layers can reject bad requests
// before spending a worker on them.
func ValidateRequest(req Request) error { return backend.ValidateRequest(req) }

// ValidateWires checks that every wire has at least two pins and every
// pin lies inside grid g, returning an *OutsideGridError for the first
// escapee. This is the boundary where out-of-grid references become
// errors instead of the silent clamping internal layers would apply.
func ValidateWires(g Grid, wires []Wire) error { return backend.ValidateWires(g, wires) }

// Grid aliases the circuit grid shape used by ValidateWires.
type Grid = backend.Grid

// Result is the unified outcome of routing one circuit through any
// backend. The quality measures are always present; paradigm-specific
// detail rides in the MP/SM/RefTrace fields of the producing backend.
type Result = backend.Result

// Backend routes circuits through one of the paper's implementations.
// Route honours the context at run boundaries: a request cancelled
// before or during the run returns ctx.Err(), though an in-flight run
// finishes in the background (its result discarded) — the simulators
// have no preemption points.
type Backend = backend.Backend

// New constructs the backend named by kind. It is the string-driven
// dispatch used by commands and the serving daemon; the per-kind
// constructors are the typed equivalents.
func New(kind Kind, opts ...Option) (Backend, error) { return backend.New(kind, opts...) }

// NewSequential constructs the uniprocessor reference router: one
// consistent cost array, the baseline both parallel paradigms are
// measured against.
func NewSequential(opts ...Option) (Backend, error) { return backend.NewSequential(opts...) }

// NewSharedMemory constructs the shared memory router on real
// goroutines: an unlocked atomic cost array, a distributed loop (or a
// static assignment via WithRoundRobin/WithThreshold/WithPureLocality)
// and a barrier per iteration.
func NewSharedMemory(opts ...Option) (Backend, error) { return backend.NewSharedMemory(opts...) }

// NewTracedSharedMemory constructs the Tango-style multiplexed shared
// memory router: a deterministic virtual-time execution whose every
// shared reference is recorded; the result carries the reference trace
// for the coherence simulator.
func NewTracedSharedMemory(opts ...Option) (Backend, error) {
	return backend.NewTracedSharedMemory(opts...)
}

// NewMessagePassing constructs the message passing router on the
// simulated mesh (discrete-event simulation): replicated views kept
// consistent by an explicit update schedule, reporting simulated time
// and network traffic.
func NewMessagePassing(opts ...Option) (Backend, error) { return backend.NewMessagePassing(opts...) }

// NewLiveMessagePassing constructs the message passing router on real
// goroutines whose only interaction is marshalled packets over
// channels — the same protocol the simulated mesh measures.
func NewLiveMessagePassing(opts ...Option) (Backend, error) {
	return backend.NewLiveMessagePassing(opts...)
}

// NewPartitioned constructs the partition-parallel router: recursive
// bisection splits the grid into WithPartitions leaf regions whose
// wires route concurrently on one shared cost array (footprint
// containment makes the regions race-free), while wires crossing a
// partition boundary are reconciled serially at each tree level. With
// one partition the schedule, and therefore the output, is
// bit-identical to the sequential backend.
func NewPartitioned(opts ...Option) (Backend, error) { return backend.NewPartitioned(opts...) }

// Command locusroute routes a standard cell circuit with the sequential
// reference router, the shared memory parallel router, or the
// partition-parallel router, and reports the quality measures.
//
// Usage:
//
//	locusroute [-circuit file | -bench bnrE|MDC] [-procs N] [-iters N] [-mode seq|live|part]
//	locusroute -mode part -partitions 4          # partition-parallel
//	locusroute -mode seq -negotiate              # negotiated congestion
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"locusroute/internal/cli"
	"locusroute/internal/report"
	"locusroute/internal/route"
	"locusroute/pkg/locusroute"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("locusroute: ")
	common := cli.New("locusroute")
	common.AddObs(flag.CommandLine)
	common.AddBench(flag.CommandLine)
	common.AddCircuitFile(flag.CommandLine)
	var (
		procs      = flag.Int("procs", 1, "processes for -mode live, worker bound for -mode part")
		iters      = flag.Int("iters", route.DefaultParams().Iterations, "routing iterations")
		mode       = flag.String("mode", "seq", "seq (sequential reference), live (goroutine shared memory) or part (partition-parallel)")
		partitions = flag.Int("partitions", 0, "leaf regions for -mode part (0 = default 4; 1 is bit-identical to seq)")
		negotiate  = flag.Bool("negotiate", false, "use the negotiated-congestion schedule (modes seq and part)")
		heatmap    = flag.Bool("heatmap", false, "render the final cost array as ASCII art")
		showReport = flag.Bool("report", false, "print the per-channel congestion analysis")
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}

	stopProfile, err := common.StartProfile()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfile()

	c, err := common.LoadCircuit()
	if err != nil {
		log.Fatal(err)
	}
	col := common.Collector()

	var backend locusroute.Backend
	switch *mode {
	case "seq":
		opts := []locusroute.Option{
			locusroute.WithIterations(*iters),
			locusroute.WithObserver(col),
		}
		if *negotiate {
			opts = append(opts, locusroute.WithNegotiatedCongestion(locusroute.Negotiated{}))
		}
		backend, err = locusroute.NewSequential(opts...)
	case "live":
		backend, err = locusroute.NewSharedMemory(
			locusroute.WithProcs(*procs),
			locusroute.WithIterations(*iters),
			locusroute.WithObserver(col))
	case "part":
		opts := []locusroute.Option{
			locusroute.WithProcs(*procs),
			locusroute.WithIterations(*iters),
			locusroute.WithObserver(col),
		}
		if *partitions > 0 {
			opts = append(opts, locusroute.WithPartitions(*partitions))
		}
		if *negotiate {
			opts = append(opts, locusroute.WithNegotiatedCongestion(locusroute.Negotiated{}))
		}
		backend, err = locusroute.NewPartitioned(opts...)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("circuit %s: %d wires, %d channels x %d grids\n",
		c.Name, len(c.Wires), c.Grid.Channels, c.Grid.Grids)

	res, err := backend.Route(context.Background(), locusroute.Request{Circuit: c})
	if err != nil {
		log.Fatal(err)
	}
	switch *mode {
	case "seq":
		fmt.Printf("sequential: circuit height %d, occupancy %d (%d wire routings, %d cells examined)\n",
			res.CircuitHeight, res.Occupancy, res.WiresRouted, res.CellsExamined)
	case "live":
		fmt.Printf("shared memory (%d goroutines): circuit height %d, occupancy %d\n",
			*procs, res.CircuitHeight, res.Occupancy)
	case "part":
		fmt.Printf("partitioned: circuit height %d, occupancy %d (%d wire routings, %d cells examined)\n",
			res.CircuitHeight, res.Occupancy, res.WiresRouted, res.CellsExamined)
	}
	if *heatmap {
		fmt.Printf("\ncost array congestion (rows = channels):\n%s", res.Final.Heatmap(100))
	}
	if *showReport {
		fmt.Printf("\n%s", report.Analyze(res.Final, 10))
	}

	if err := common.WriteSnapshot(col); err != nil {
		log.Fatal(err)
	}
}

// Command locusroute routes a standard cell circuit with the sequential
// reference router or the shared memory parallel router and reports the
// quality measures.
//
// Usage:
//
//	locusroute [-circuit file | -bench bnrE|MDC] [-procs N] [-iters N] [-mode seq|live]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"locusroute/internal/circuit"
	"locusroute/internal/obs"
	"locusroute/internal/report"
	"locusroute/internal/route"
	"locusroute/internal/sm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("locusroute: ")
	var (
		circuitFile = flag.String("circuit", "", "circuit file to route (text format)")
		bench       = flag.String("bench", "bnrE", "builtin benchmark when -circuit is empty: bnrE or MDC")
		seed        = flag.Int64("seed", 1, "seed for the builtin benchmark generator")
		procs       = flag.Int("procs", 1, "processes for -mode live")
		iters       = flag.Int("iters", route.DefaultParams().Iterations, "routing iterations")
		mode        = flag.String("mode", "seq", "seq (sequential reference) or live (goroutine shared memory)")
		heatmap     = flag.Bool("heatmap", false, "render the final cost array as ASCII art (seq mode)")
		showReport  = flag.Bool("report", false, "print the per-channel congestion analysis (seq mode)")
		jsonPath    = flag.String("json", "", `write an observability JSON document to this file ("-" = stdout)`)
		profile     = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	stopProfile, err := obs.StartCPUProfile(*profile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfile()

	c, err := loadCircuit(*circuitFile, *bench, *seed)
	if err != nil {
		log.Fatal(err)
	}
	var col *obs.Collector
	if *jsonPath != "" {
		col = obs.NewCollector()
	}
	params := route.DefaultParams()
	params.Iterations = *iters

	fmt.Printf("circuit %s: %d wires, %d channels x %d grids\n",
		c.Name, len(c.Wires), c.Grid.Channels, c.Grid.Grids)

	switch *mode {
	case "seq":
		res, arr := route.Sequential(c, params)
		fmt.Printf("sequential: circuit height %d, occupancy %d (%d wire routings, %d cells examined)\n",
			res.CircuitHeight, res.Occupancy, res.WiresRouted, res.CellsExamined)
		if *heatmap {
			fmt.Printf("\ncost array congestion (rows = channels):\n%s", arr.Heatmap(100))
		}
		if *showReport {
			fmt.Printf("\n%s", report.Analyze(arr, 10))
		}
		col.Append(obs.Run{
			Name: c.Name, Backend: "sequential", Circuit: c.Name, Procs: 1,
			Quality: &obs.Quality{CircuitHeight: res.CircuitHeight, Occupancy: res.Occupancy},
		})
	case "live":
		cfg := sm.DefaultConfig()
		cfg.Procs = *procs
		cfg.Router = params
		if col.Enabled() {
			cfg.Obs = obs.NewSM()
		}
		res, err := sm.RunLive(c, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shared memory (%d goroutines): circuit height %d, occupancy %d\n",
			*procs, res.CircuitHeight, res.Occupancy)
		col.Append(sm.ObsRun(c.Name, "sm-live", c.Name, cfg, res))
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	if *jsonPath != "" {
		command := strings.Join(append([]string{"locusroute"}, os.Args[1:]...), " ")
		if err := col.Snapshot(command).WriteFile(*jsonPath); err != nil {
			log.Fatal(err)
		}
	}
}

func loadCircuit(file, bench string, seed int64) (*circuit.Circuit, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.Read(f)
	}
	switch bench {
	case "bnrE":
		return circuit.Generate(circuit.BnrELike(seed))
	case "MDC":
		return circuit.Generate(circuit.MDCLike(seed))
	}
	return nil, fmt.Errorf("unknown benchmark %q (want bnrE or MDC)", bench)
}

// Command paper regenerates the tables of the paper's evaluation section
// (Martonosi & Gupta, ICPP 1989) on the synthetic benchmark circuits.
//
// Usage:
//
//	paper -all                 # every table (several minutes)
//	paper -all -par 4          # same tables, four simulations at a time
//	paper -table 1             # one table: 1, 2, 3, 4, 5, 6
//	paper -table blocking      # Section 5.1.3 blocking comparison
//	paper -table mixed         # Section 5.1.3 mixed schedules
//	paper -table locality      # Section 5.3.3 locality measure
//	paper -table comparison    # Section 5.2 SM vs MP
//
// Every independent simulation fans out across -par workers; results are
// merged in submission order, so the output bytes are identical at every
// -par value.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"locusroute/internal/experiments"
	"locusroute/internal/obs"
	"locusroute/internal/par"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paper: ")
	var (
		table    = flag.String("table", "", "table to regenerate: 1-6, blocking, mixed, locality, comparison, packets, distribution, ownership, network, ordering, topology, robustness")
		all      = flag.Bool("all", false, "regenerate every table")
		procs    = flag.Int("procs", 16, "processor count for tables that do not sweep it")
		iters    = flag.Int("iters", experiments.DefaultSetup().Iterations, "routing iterations")
		parN     = flag.Int("par", 0, "concurrent simulations (0 = GOMAXPROCS); output is identical at every value")
		jsonPath = flag.String("json", "", `write an observability JSON document to this file ("-" = stdout)`)
		profile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	stopProfile, err := obs.StartCPUProfile(*profile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfile()

	s := experiments.DefaultSetup()
	s.Procs = *procs
	s.Iterations = *iters
	s.Pool = par.New(*parN)
	if *jsonPath != "" {
		s.Obs = obs.NewCollector()
	}
	bnrE := experiments.BnrE()
	mdc := experiments.MDC()

	var names []string
	switch {
	case *all:
		names = experiments.TableNames()
	case *table == "":
		log.Fatal("pass -table <name> or -all (see -h)")
	default:
		names = []string{*table}
	}

	tables, err := experiments.RenderSet(names, bnrE, mdc, s)
	if err != nil {
		log.Fatal(err)
	}
	for _, text := range tables {
		fmt.Println(text)
	}

	if *jsonPath != "" {
		command := strings.Join(append([]string{"paper"}, os.Args[1:]...), " ")
		if err := s.Obs.Snapshot(command).WriteFile(*jsonPath); err != nil {
			log.Fatal(err)
		}
	}
}

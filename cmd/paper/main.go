// Command paper regenerates the tables of the paper's evaluation section
// (Martonosi & Gupta, ICPP 1989) on the synthetic benchmark circuits.
//
// Usage:
//
//	paper -all                 # every table (several minutes)
//	paper -all -par 4          # same tables, four simulations at a time
//	paper -table 1             # one table: 1, 2, 3, 4, 5, 6
//	paper -table blocking      # Section 5.1.3 blocking comparison
//	paper -table mixed         # Section 5.1.3 mixed schedules
//	paper -table locality      # Section 5.3.3 locality measure
//	paper -table comparison    # Section 5.2 SM vs MP
//	paper -table critpath      # critical-path attribution (traced runs)
//	paper -table partition     # partition-parallel speedup sweep
//	paper -trace out.json      # Perfetto trace of the standard schedule
//
// Every independent simulation fans out across -par workers; results are
// merged in submission order, so the output bytes are identical at every
// -par value. -trace requires -par 1: the trace file captures one run's
// event timeline, and refusing the combination is how the tool
// guarantees it never writes an interleaved document.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"locusroute/internal/cli"
	"locusroute/internal/experiments"
	"locusroute/internal/tracev"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paper: ")
	common := cli.New("paper")
	common.AddPar(flag.CommandLine, "output is identical at every value")
	common.AddObs(flag.CommandLine)
	var (
		table      = flag.String("table", "", "table to regenerate: 1-6, blocking, mixed, locality, comparison, packets, distribution, ownership, network, ordering, topology, robustness, critpath, partition")
		all        = flag.Bool("all", false, "regenerate every table")
		procs      = flag.Int("procs", 16, "processor count for tables that do not sweep it")
		iters      = flag.Int("iters", experiments.DefaultSetup().Iterations, "routing iterations")
		partitions = flag.Int("partitions", 0, "restrict the partition table's sweep to one leaf count (0 sweeps 1, 2, 4, 8)")
		traceOut   = flag.String("trace", "", "write a Chrome/Perfetto trace of the standard schedule to this file (requires -par 1)")
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}

	if *traceOut != "" && common.Par != 1 {
		// An event trace captures a single run's timeline; refusing the
		// parallel pool outright is what guarantees the file can never
		// interleave concurrent runs.
		log.Fatal("-trace requires -par 1 (a trace file records one run's event timeline)")
	}

	stopProfile, err := common.StartProfile()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfile()

	s := experiments.DefaultSetup()
	s.Procs = *procs
	s.Iterations = *iters
	s.Pool = common.Pool()
	s.Obs = common.Collector()
	if *partitions > 0 {
		s.Partitions = []int{*partitions}
	}
	bnrE := experiments.BnrE()
	mdc := experiments.MDC()

	var names []string
	switch {
	case *all:
		names = experiments.TableNames()
	case *table != "":
		names = []string{*table}
	case *traceOut == "":
		log.Fatal("pass -table <name>, -all, or -trace <file> (see -h)")
	}

	tables, err := experiments.RenderSet(names, bnrE, mdc, s)
	if err != nil {
		log.Fatal(err)
	}
	for _, text := range tables {
		fmt.Println(text)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		cp, err := experiments.WriteTrace(bnrE, s, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: wrote %s (open at https://ui.perfetto.dev)\n", *traceOut)
		fmt.Printf("trace: critical path %.3fs ending on node %d, %d hops, %d steps\n",
			float64(cp.TotalNs)/1e9, cp.EndTrack, cp.Hops, len(cp.Steps))
		fmt.Printf("trace: on path: compute %.3fs, packet %.3fs, blocked %.3fs, barrier %.3fs, network %.3fs\n",
			cp.Seconds(tracev.CatCompute), cp.Seconds(tracev.CatPacket),
			cp.Seconds(tracev.CatBlocked), cp.Seconds(tracev.CatBarrier),
			cp.Seconds(tracev.CatNetwork))
	}

	if err := common.WriteSnapshot(s.Obs); err != nil {
		log.Fatal(err)
	}
}

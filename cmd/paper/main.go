// Command paper regenerates the tables of the paper's evaluation section
// (Martonosi & Gupta, ICPP 1989) on the synthetic benchmark circuits.
//
// Usage:
//
//	paper -all                 # every table (several minutes)
//	paper -table 1             # one table: 1, 2, 3, 4, 5, 6
//	paper -table blocking      # Section 5.1.3 blocking comparison
//	paper -table mixed         # Section 5.1.3 mixed schedules
//	paper -table locality      # Section 5.3.3 locality measure
//	paper -table comparison    # Section 5.2 SM vs MP
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"locusroute/internal/circuit"
	"locusroute/internal/experiments"
	"locusroute/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paper: ")
	var (
		table    = flag.String("table", "", "table to regenerate: 1-6, blocking, mixed, locality, comparison, packets, distribution, ownership, network")
		all      = flag.Bool("all", false, "regenerate every table")
		procs    = flag.Int("procs", 16, "processor count for tables that do not sweep it")
		iters    = flag.Int("iters", experiments.DefaultSetup().Iterations, "routing iterations")
		jsonPath = flag.String("json", "", `write an observability JSON document to this file ("-" = stdout)`)
		profile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	stopProfile, err := obs.StartCPUProfile(*profile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfile()

	s := experiments.DefaultSetup()
	s.Procs = *procs
	s.Iterations = *iters
	if *jsonPath != "" {
		s.Obs = obs.NewCollector()
	}
	bnrE := experiments.BnrE()
	both := []*circuit.Circuit{bnrE, experiments.MDC()}

	run := func(name string) {
		switch name {
		case "1":
			fmt.Println(experiments.RenderTable1(experiments.Table1(bnrE, s)))
		case "2":
			fmt.Println(experiments.RenderTable2(experiments.Table2(bnrE, s)))
		case "3":
			fmt.Println(experiments.RenderTable3(experiments.Table3(bnrE, s)))
		case "4":
			fmt.Println(experiments.RenderTable4(experiments.Table4(both, s)))
		case "5":
			fmt.Println(experiments.RenderTable5(experiments.Table5(both, s)))
		case "6":
			fmt.Println(experiments.RenderTable6(experiments.Table6(bnrE, s)))
		case "blocking":
			fmt.Println(experiments.RenderBlocking(experiments.Blocking(bnrE, s)))
		case "mixed":
			fmt.Println(experiments.RenderMixed(experiments.Mixed(bnrE, s)))
		case "locality":
			fmt.Println(experiments.RenderLocality(experiments.Locality(both, s)))
		case "comparison":
			fmt.Println(experiments.RenderComparison(experiments.Comparison(bnrE, s)))
		case "packets":
			fmt.Println(experiments.RenderPacketStructures(experiments.PacketStructures(bnrE, s)))
		case "distribution":
			fmt.Println(experiments.RenderWireDistribution(experiments.WireDistribution(bnrE, s)))
		case "ownership":
			fmt.Println(experiments.RenderCostArrayDistribution(experiments.CostArrayDistribution(bnrE, s)))
		case "ordering":
			fmt.Println(experiments.RenderWireOrdering(experiments.WireOrdering(bnrE, s)))
		case "topology":
			fmt.Println(experiments.RenderTopology(experiments.Topology(bnrE, s)))
		case "network":
			fmt.Println(experiments.RenderNetworkSensitivity(experiments.NetworkSensitivity(bnrE, s)))
		case "robustness":
			fmt.Println(experiments.RenderRobustness(
				experiments.Robustness([]int64{1, 2, 3, 4, 5}, s)))
		default:
			log.Fatalf("unknown table %q", name)
		}
	}

	switch {
	case *all:
		for _, name := range []string{"1", "2", "blocking", "mixed", "3", "comparison", "4", "5", "6", "locality", "packets", "distribution", "ownership", "network", "ordering", "topology"} {
			run(name)
		}
	case *table == "":
		log.Fatal("pass -table <name> or -all (see -h)")
	default:
		run(*table)
	}

	if *jsonPath != "" {
		command := strings.Join(append([]string{"paper"}, os.Args[1:]...), " ")
		if err := s.Obs.Snapshot(command).WriteFile(*jsonPath); err != nil {
			log.Fatal(err)
		}
	}
}

// Command mproute runs the message passing LocusRoute on the simulated
// mesh with a configurable update strategy and reports quality, simulated
// execution time, and network traffic (total and per packet kind).
//
// Usage:
//
//	mproute [-bench bnrE|MDC] [-procs 16] [-iters N]
//	        [-sld N] [-srd N] [-rld N] [-rrd N] [-blocking]
//	        [-assign rr|threshold] [-threshold 1000] [-par N]
//	        [-trace out.json]
//
// -trace records an event-level timeline of the simulated run and writes
// it as a Chrome trace-event document (open it at ui.perfetto.dev: one
// track per node, flow arrows for packets). It also prints the run's
// critical path — the chain of dependent events that sets the simulated
// time — with a per-category breakdown of time on the path. Tracing
// records simulated time, so -trace and -live are mutually exclusive.
//
// -par is accepted for interface uniformity with cmd/paper and
// cmd/smtrace (scripted sweeps pass the same flags to all three); a
// single mproute invocation is one simulation, so there is nothing to
// fan out and the flag does not change the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"locusroute/internal/assign"
	"locusroute/internal/cli"
	"locusroute/internal/geom"
	"locusroute/internal/mp"
	"locusroute/internal/msg"
	"locusroute/internal/route"
	"locusroute/internal/tracev"
	"locusroute/pkg/locusroute"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mproute: ")
	common := cli.New("mproute")
	common.AddPar(flag.CommandLine, "a single mproute invocation is one simulation, so the flag does not change the run")
	common.AddObs(flag.CommandLine)
	common.AddBench(flag.CommandLine)
	var (
		procs     = flag.Int("procs", 16, "number of simulated processors")
		iters     = flag.Int("iters", route.DefaultParams().Iterations, "routing iterations")
		sld       = flag.Int("sld", 0, "wires between SendLocData broadcasts (0 = off)")
		srd       = flag.Int("srd", 0, "wires between SendRmtData pushes (0 = off)")
		rld       = flag.Int("rld", 0, "ReqRmtData packets before a ReqLocData pull (0 = off)")
		rrd       = flag.Int("rrd", 0, "region touches before a ReqRmtData request (0 = off)")
		blocking  = flag.Bool("blocking", false, "block for outstanding ReqRmtData responses")
		asnMethod = flag.String("assign", "threshold", "wire assignment: rr or threshold")
		threshold = flag.Int("threshold", 1000, "ThresholdCost for -assign threshold (-1 = infinity)")
		packets   = flag.String("packets", "bbox", "update packet structure: bbox, wire or region")
		dynamic   = flag.Bool("dynamic", false, "dynamic wire assignment over the network (ablation)")
		strict    = flag.Bool("strict", false, "strict region ownership, no replicated views (ablation)")
		live      = flag.Bool("live", false, "run on real goroutines and channels instead of the DES")
		traceOut  = flag.String("trace", "", "write a Chrome/Perfetto trace of the run to this file (DES only)")
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}

	stopProfile, err := common.StartProfile()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfile()

	c, err := common.LoadCircuit()
	if err != nil {
		log.Fatal(err)
	}
	col := common.Collector()

	opts := []locusroute.Option{
		locusroute.WithProcs(*procs),
		locusroute.WithIterations(*iters),
		locusroute.WithObserver(col),
	}

	st := mp.Strategy{
		SendLocData: *sld, SendRmtData: *srd,
		ReqLocData: *rld, ReqRmtData: *rrd, Blocking: *blocking,
	}
	if *sld == 0 && *srd == 0 && *rrd == 0 && !*strict {
		// Default to the paper's standard sender initiated schedule.
		st = mp.SenderInitiated(2, 10)
	}
	if !*strict {
		opts = append(opts, locusroute.WithStrategy(st))
	}

	switch *asnMethod {
	case "rr":
		opts = append(opts, locusroute.WithRoundRobin())
	case "threshold":
		opts = append(opts, locusroute.WithThreshold(*threshold))
	default:
		log.Fatalf("unknown assignment %q", *asnMethod)
	}
	switch *packets {
	case "bbox":
		opts = append(opts, locusroute.WithPackets(locusroute.PacketsBbox))
	case "wire":
		opts = append(opts, locusroute.WithPackets(locusroute.PacketsWireBased))
	case "region":
		opts = append(opts, locusroute.WithPackets(locusroute.PacketsWholeRegion))
	default:
		log.Fatalf("unknown packet structure %q", *packets)
	}
	if *dynamic {
		opts = append(opts, locusroute.WithDynamicWires())
	}
	if *strict {
		// Strict ownership forces the pure-locality assignment.
		opts = append(opts, locusroute.WithStrictOwnership())
	}

	var tracer *tracev.Tracer
	if *traceOut != "" {
		if *live {
			log.Fatal("-trace records simulated time; it cannot be combined with -live")
		}
		tracer = tracev.New(0)
		opts = append(opts, locusroute.WithTracer(tracer))
	}

	newBackend := locusroute.NewMessagePassing
	if *live {
		newBackend = locusroute.NewLiveMessagePassing
	}
	backend, err := newBackend(opts...)
	if err != nil {
		log.Fatal(err)
	}

	var res locusroute.Result
	common.Pool().Run(func() {
		res, err = backend.Route(context.Background(), locusroute.Request{Circuit: c, Name: common.Bench})
	})
	if err != nil {
		log.Fatal(err)
	}
	mpRes := res.MP

	if err := common.WriteSnapshot(col); err != nil {
		log.Fatal(err)
	}

	px, py := geom.SquarestFactors(*procs)
	part, err := geom.NewPartition(c.Grid, px, py)
	if err != nil {
		log.Fatal(err)
	}
	asn := routingAssignment(c, part, *asnMethod, *threshold, *strict)
	fmt.Printf("circuit %s on %d processors (%dx%d mesh), strategy %v\n",
		c.Name, *procs, px, py, st)
	fmt.Printf("locality measure: %.2f hops, load imbalance %.2fx\n",
		assign.LocalityMeasure(c, part, asn), asn.Imbalance())
	fmt.Printf("circuit height:   %d\n", res.CircuitHeight)
	fmt.Printf("occupancy factor: %d\n", res.Occupancy)
	fmt.Printf("execution time:   %v\n", mpRes.Time)
	fmt.Printf("update traffic:   %.3f MBytes (%d packets, contention delay %v)\n",
		mpRes.MBytes(), mpRes.Net.Packets, mpRes.Net.ContentionDelay)
	fmt.Printf("busy time split:  %.0f%% routing, %.0f%% update machinery\n",
		(1-mpRes.MessageFraction())*100, mpRes.MessageFraction()*100)

	kinds := make([]msg.Kind, 0, len(mpRes.BytesByKind))
	for k := range mpRes.BytesByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("  %-12s %8d bytes in %d packets\n",
			k, mpRes.BytesByKind[k], mpRes.PacketsByKind[k])
	}

	if *traceOut != "" {
		writeTrace(*traceOut, tracer, c.Name, *procs)
	}
}

// routingAssignment rebuilds the assignment the backend used, for the
// locality and imbalance report lines (the facade constructs its own
// copy internally from the same inputs).
func routingAssignment(c *locusroute.Circuit, part geom.Partition, method string, threshold int, strict bool) *assign.Assignment {
	if strict {
		return assign.AssignThreshold(c, part, assign.ThresholdInfinity)
	}
	if method == "rr" {
		return assign.AssignRoundRobin(c, part)
	}
	th := threshold
	if th < 0 {
		th = assign.ThresholdInfinity
	}
	return assign.AssignThreshold(c, part, th)
}

// writeTrace exports the run's event timeline as a Chrome trace-event
// document and prints its critical path: the chain of dependent events
// that sets the simulated time, with each wait resolved to the packet
// (and sender) that ended it.
func writeTrace(path string, tracer *tracev.Tracer, circuitName string, procs int) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	err = tracer.WriteChrome(f, mp.ChromeOptions(circuitName, procs))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	cp, err := tracev.Analyze(tracer.Events())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trace:            wrote %s (open at https://ui.perfetto.dev)\n", path)
	if dropped := tracer.Dropped(); dropped > 0 {
		fmt.Printf("trace:            ring overflowed, oldest %d events dropped (early time reads as untraced)\n", dropped)
	}
	fmt.Printf("critical path:    %.3fs ending on node %d, %d packet hops, %d steps\n",
		float64(cp.TotalNs)/1e9, cp.EndTrack, cp.Hops, len(cp.Steps))
	fmt.Printf("  on path:        compute %.3fs, packet %.3fs, blocked %.3fs, barrier %.3fs, network %.3fs, untraced %.3fs\n",
		cp.Seconds(tracev.CatCompute), cp.Seconds(tracev.CatPacket),
		cp.Seconds(tracev.CatBlocked), cp.Seconds(tracev.CatBarrier),
		cp.Seconds(tracev.CatNetwork), cp.Seconds(tracev.CatUntraced))

	steps := append([]tracev.Step(nil), cp.Steps...)
	sort.Slice(steps, func(i, j int) bool { return steps[i].DurNs() > steps[j].DurNs() })
	if len(steps) > 8 {
		steps = steps[:8]
	}
	fmt.Println("  longest steps:")
	for _, st := range steps {
		detail := ""
		switch {
		case st.Flow != 0:
			detail = fmt.Sprintf("  ended by %d-byte packet from node %d", st.Bytes, st.FromTrack)
		case st.Wire >= 0:
			detail = fmt.Sprintf("  wire %d", st.Wire)
		}
		fmt.Printf("    node %-3d %-9s %9.6fs  [%.6fs, %.6fs]%s\n",
			st.Track, st.Cat, float64(st.DurNs())/1e9,
			float64(st.FromNs)/1e9, float64(st.ToNs)/1e9, detail)
	}
}

// Command mproute runs the message passing LocusRoute on the simulated
// mesh with a configurable update strategy and reports quality, simulated
// execution time, and network traffic (total and per packet kind).
//
// Usage:
//
//	mproute [-bench bnrE|MDC] [-procs 16] [-iters N]
//	        [-sld N] [-srd N] [-rld N] [-rrd N] [-blocking]
//	        [-assign rr|threshold] [-threshold 1000] [-par N]
//
// -par is accepted for interface uniformity with cmd/paper and
// cmd/smtrace (scripted sweeps pass the same flags to all three); a
// single mproute invocation is one simulation, so there is nothing to
// fan out and the flag does not change the run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"locusroute/internal/assign"
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/mp"
	"locusroute/internal/msg"
	"locusroute/internal/obs"
	"locusroute/internal/par"
	"locusroute/internal/route"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mproute: ")
	var (
		bench     = flag.String("bench", "bnrE", "builtin benchmark: bnrE or MDC")
		seed      = flag.Int64("seed", 1, "benchmark generator seed")
		procs     = flag.Int("procs", 16, "number of simulated processors")
		iters     = flag.Int("iters", route.DefaultParams().Iterations, "routing iterations")
		sld       = flag.Int("sld", 0, "wires between SendLocData broadcasts (0 = off)")
		srd       = flag.Int("srd", 0, "wires between SendRmtData pushes (0 = off)")
		rld       = flag.Int("rld", 0, "ReqRmtData packets before a ReqLocData pull (0 = off)")
		rrd       = flag.Int("rrd", 0, "region touches before a ReqRmtData request (0 = off)")
		blocking  = flag.Bool("blocking", false, "block for outstanding ReqRmtData responses")
		asnMethod = flag.String("assign", "threshold", "wire assignment: rr or threshold")
		threshold = flag.Int("threshold", 1000, "ThresholdCost for -assign threshold (-1 = infinity)")
		packets   = flag.String("packets", "bbox", "update packet structure: bbox, wire or region")
		dynamic   = flag.Bool("dynamic", false, "dynamic wire assignment over the network (ablation)")
		strict    = flag.Bool("strict", false, "strict region ownership, no replicated views (ablation)")
		live      = flag.Bool("live", false, "run on real goroutines and channels instead of the DES")
		parN      = flag.Int("par", 0, "accepted for interface uniformity; a single run has nothing to fan out")
		jsonPath  = flag.String("json", "", `write an observability JSON document to this file ("-" = stdout)`)
		profile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	stopProfile, err := obs.StartCPUProfile(*profile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfile()

	var c *circuit.Circuit
	switch *bench {
	case "bnrE":
		c, err = circuit.Generate(circuit.BnrELike(*seed))
	case "MDC":
		c, err = circuit.Generate(circuit.MDCLike(*seed))
	default:
		log.Fatalf("unknown benchmark %q", *bench)
	}
	if err != nil {
		log.Fatal(err)
	}

	px, py := geom.SquarestFactors(*procs)
	part, err := geom.NewPartition(c.Grid, px, py)
	if err != nil {
		log.Fatal(err)
	}
	var asn *assign.Assignment
	switch *asnMethod {
	case "rr":
		asn = assign.AssignRoundRobin(c, part)
	case "threshold":
		th := *threshold
		if th < 0 {
			th = assign.ThresholdInfinity
		}
		asn = assign.AssignThreshold(c, part, th)
	default:
		log.Fatalf("unknown assignment %q", *asnMethod)
	}

	st := mp.Strategy{
		SendLocData: *sld, SendRmtData: *srd,
		ReqLocData: *rld, ReqRmtData: *rrd, Blocking: *blocking,
	}
	if *sld == 0 && *srd == 0 && *rrd == 0 && !*strict {
		// Default to the paper's standard sender initiated schedule.
		st = mp.SenderInitiated(2, 10)
	}
	cfg := mp.DefaultConfig(st)
	cfg.Procs = *procs
	cfg.Router.Iterations = *iters
	cfg.DynamicWires = *dynamic
	cfg.StrictOwnership = *strict
	switch *packets {
	case "bbox":
		cfg.Packets = mp.StructureBbox
	case "wire":
		cfg.Packets = mp.StructureWireBased
	case "region":
		cfg.Packets = mp.StructureWholeRegion
	default:
		log.Fatalf("unknown packet structure %q", *packets)
	}
	if *strict {
		// Strict ownership requires the pure-locality assignment.
		asn = assign.AssignThreshold(c, part, assign.ThresholdInfinity)
	}

	run, backend := mp.Run, "mp-des"
	if *live {
		run, backend = mp.RunLive, "mp-live"
	}
	if *jsonPath != "" {
		cfg.Obs = obs.NewMP(cfg.Procs)
	}
	var res mp.Result
	par.New(*parN).Run(func() { res, err = run(c, asn, cfg) })
	if err != nil {
		log.Fatal(err)
	}

	if *jsonPath != "" {
		col := obs.NewCollector()
		col.Append(mp.ObsRun(*bench, backend, c.Name, cfg, res))
		command := strings.Join(append([]string{"mproute"}, os.Args[1:]...), " ")
		if err := col.Snapshot(command).WriteFile(*jsonPath); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("circuit %s on %d processors (%dx%d mesh), strategy %v\n",
		c.Name, *procs, px, py, st)
	fmt.Printf("locality measure: %.2f hops, load imbalance %.2fx\n",
		assign.LocalityMeasure(c, part, asn), asn.Imbalance())
	fmt.Printf("circuit height:   %d\n", res.CircuitHeight)
	fmt.Printf("occupancy factor: %d\n", res.Occupancy)
	fmt.Printf("execution time:   %v\n", res.Time)
	fmt.Printf("update traffic:   %.3f MBytes (%d packets, contention delay %v)\n",
		res.MBytes(), res.Net.Packets, res.Net.ContentionDelay)
	fmt.Printf("busy time split:  %.0f%% routing, %.0f%% update machinery\n",
		(1-res.MessageFraction())*100, res.MessageFraction()*100)

	kinds := make([]msg.Kind, 0, len(res.BytesByKind))
	for k := range res.BytesByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("  %-12s %8d bytes in %d packets\n",
			k, res.BytesByKind[k], res.PacketsByKind[k])
	}
}

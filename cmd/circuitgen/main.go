// Command circuitgen generates synthetic standard cell benchmark circuits
// (the bnrE-like and MDC-like stand-ins, or fully parametric ones), dumps
// them in the text format, and describes their statistics.
//
// Usage:
//
//	circuitgen -bench bnrE -o bnrE.ckt          # write a benchmark file
//	circuitgen -bench MDC -describe             # print statistics only
//	circuitgen -bench bnrE -scale 10 -o big.ckt # 10x-scaled preset
//	circuitgen -channels 8 -grids 128 -wires 200 -seed 7 -o custom.ckt
//
// -scale N multiplies the preset (or custom) dimensions: N times the
// wires spread over a grid with about N times the cells, keeping wire
// density comparable (see circuit.Scaled). The 10x bnrE-like preset is
// the benchmark circuit for partition-parallel routing
// (BENCH_partition.json).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"locusroute/internal/circuit"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("circuitgen: ")
	var (
		bench    = flag.String("bench", "", "builtin benchmark preset: bnrE or MDC (overrides dimension flags)")
		seed     = flag.Int64("seed", 1, "generator seed")
		channels = flag.Int("channels", 8, "routing channels")
		grids    = flag.Int("grids", 128, "routing grid columns")
		wires    = flag.Int("wires", 200, "number of wires")
		meanSpan = flag.Float64("meanspan", 14, "mean horizontal span of short wires")
		longFrac = flag.Float64("longfrac", 0.1, "fraction of long wires")
		scale    = flag.Int("scale", 1, "scale the preset up N times (wires xN, grid cells ~xN)")
		out      = flag.String("o", "", "output file (default stdout)")
		describe = flag.Bool("describe", false, "print statistics instead of the circuit")
	)
	flag.Parse()

	var params circuit.GenParams
	switch *bench {
	case "bnrE":
		params = circuit.BnrELike(*seed)
	case "MDC":
		params = circuit.MDCLike(*seed)
	case "":
		params = circuit.GenParams{
			Name: "custom", Channels: *channels, Grids: *grids, Wires: *wires,
			MeanSpan: *meanSpan, LongFrac: *longFrac, Seed: *seed,
		}
	default:
		log.Fatalf("unknown benchmark %q (want bnrE or MDC)", *bench)
	}
	if *scale > 1 {
		params = circuit.Scaled(params, *scale)
	}

	c, err := circuit.Generate(params)
	if err != nil {
		log.Fatal(err)
	}

	if *describe {
		fmt.Printf("circuit %s: %d channels x %d grids\n", c.Name, c.Grid.Channels, c.Grid.Grids)
		fmt.Println(circuit.ComputeStats(c))
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := circuit.Write(w, c); err != nil {
		log.Fatal(err)
	}
}

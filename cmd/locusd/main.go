// Command locusd serves route-request traffic over HTTP against
// preloaded circuits: a long-running daemon wrapping the pkg/locusroute
// backends behind internal/locusd's sharded batch-serving layer.
//
// Usage:
//
//	locusd [-addr :8347] [-listen-bin addr] [-bench bnrE|MDC|both]
//	       [-seed 1] [-circuit file]
//	       [-backend sequential|sm-live|sm-traced|mp-des|mp-live]
//	       [-procs 16] [-shards 4] [-batch-window 2ms] [-max-batch 64]
//	       [-max-in-flight 256] [-deadline 5s] [-par N]
//	       [-admit-floor 0] [-rate-limit 0] [-rate-burst 0]
//	       [-breaker-failures 0] [-breaker-cooldown 1s] [-cache-size 0]
//	       [-edf]
//	       [-trace] [-trace-sample 1] [-trace-capacity 4096]
//	       [-slow-log-threshold 0] [-log-format text|json] [-pprof]
//	       [-store] [-store-dir dir] [-store-mem MiB]
//
// The policy flags assemble the request-path chain (internal/policy):
// deadline admission, per-client token-bucket rate limiting, a circuit
// breaker, a result cache keyed by (circuit, wire set, cost epoch), and
// the criticality scheduler (-edf: earliest-deadline-first batches,
// least-critical-first shedding). Each element is off by default and
// costs nothing while disabled.
//
// The tracing flags enable request-scoped observability
// (internal/reqtrace): -trace assigns every request a process-unique id
// (or adopts the caller's, via the X-Locus-Request-Id header or the
// binary protocol's traced frames) and returns a per-stage latency
// breakdown with each response; -trace-sample retains every Nth
// finished request in the capture ring (-trace-capacity records);
// -slow-log-threshold logs any request at or over the threshold with
// its full stage breakdown, and implies -trace. All daemon logging goes
// through one log/slog logger on stderr; -log-format selects the text
// (default) or JSON handler.
//
// The store flags enable the dynamic circuit lifecycle (internal/store):
// -store serves runtime uploads, incremental mutations and evictions
// from an in-memory circuit store; -store-dir adds snapshot+WAL
// persistence, so a restart replays the log and reconstructs
// byte-identical cost arrays; -store-mem bounds resident circuit bytes
// (uploads beyond the budget fail with 507). Startup circuits stay
// immutable; only the sequential backend adopts them into the store.
//
// On startup each circuit is routed once through the selected backend;
// the resulting cost array seeds the serving replicas. Endpoints
// (canonical under /v1/; the unversioned aliases answer identically
// with a Deprecation header):
//
//	POST   /v1/route            {"circuit","pins":[[x,y],...],"commit","deadline_ms"}
//	GET    /v1/circuits         served circuits and their baseline quality
//	POST   /v1/circuits/{name}  upload a circuit (requires -store)
//	DELETE /v1/circuits/{name}  evict a circuit (requires -store)
//	POST   /v1/mutate           {"circuit","ops":[{"op","wire","pins"},...]}
//	GET    /v1/healthz          200 ok / 503 draining
//	GET    /v1/metrics          Prometheus text exposition
//	GET    /debug/vars          counters and histograms as JSON
//	GET    /debug/trace         Chrome-trace capture of the next ?sec=N seconds
//	                            (requires -trace or -slow-log-threshold)
//	GET    /debug/pprof         net/http/pprof profiles (requires -pprof)
//
// -listen-bin additionally serves the length-prefixed binary route
// protocol (internal/wire) on a raw TCP listener, funneling into the
// same request core; cmd/locusload drives either transport.
//
// SIGINT/SIGTERM begins a graceful drain: /healthz flips to 503 (so load
// balancers stop sending), new routes are refused, in-flight requests
// complete, and the process exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"locusroute/internal/circuit"
	"locusroute/internal/cli"
	"locusroute/internal/locusd"
	"locusroute/internal/reqtrace"
	"locusroute/internal/store"
	"locusroute/pkg/locusroute"
)

func main() {
	common := cli.New("locusd")
	common.AddPar(flag.CommandLine, "bounds concurrent batch evaluations")
	common.AddCircuitFile(flag.CommandLine)
	common.AddPolicy(flag.CommandLine)
	var (
		addr        = flag.String("addr", ":8347", "listen address")
		listenBin   = flag.String("listen-bin", "", "also serve the binary route protocol on this TCP address")
		bench       = flag.String("bench", "both", "builtin circuits to serve: bnrE, MDC or both")
		seed        = flag.Int64("seed", 1, "benchmark generator seed")
		backendKind = flag.String("backend", string(locusroute.Sequential),
			fmt.Sprintf("baseline routing backend: one of %v", locusroute.Kinds()))
		procs       = flag.Int("procs", 16, "processors for the baseline backend")
		partitions  = flag.Int("partitions", 0, "leaf regions for the partitioned baseline backend (0 = backend default)")
		shards      = flag.Int("shards", 4, "serving replicas per circuit")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "how long a shard waits to grow a batch")
		maxBatch    = flag.Int("max-batch", 64, "max wires per batch")
		maxInFlight = flag.Int("max-in-flight", 256, "admitted requests before shedding 429s")
		deadline    = flag.Duration("deadline", 5*time.Second, "default per-request deadline")
		drainGrace  = flag.Duration("drain-grace", 30*time.Second, "shutdown bound for completing in-flight requests")
		trace       = flag.Bool("trace", false, "enable request tracing: ids, stage breakdowns, /debug/trace")
		traceSample = flag.Int("trace-sample", 1, "retain every Nth finished request in the capture ring (0 = only live-capture windows)")
		traceCap    = flag.Int("trace-capacity", reqtrace.DefaultCapacity, "capture ring size in records")
		slowLog     = flag.Duration("slow-log-threshold", 0, "log requests at or over this wall latency with their stage breakdown (0 = off; implies -trace)")
		logFormat   = flag.String("log-format", "text", "log handler: text or json")
		pprofFlag   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		storeFlag   = flag.Bool("store", false, "enable the dynamic circuit lifecycle (upload/mutate/evict) on an in-memory store")
		storeDir    = flag.String("store-dir", "", "circuit store persistence directory (snapshot+WAL; implies -store)")
		storeMem    = flag.Int64("store-mem", 0, "circuit store memory budget in MiB (0 = unlimited)")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintln(os.Stderr, "locusd: -log-format must be text or json")
		os.Exit(1)
	}
	logger := slog.New(handler)
	fatal := func(err error) {
		logger.Error(err.Error())
		os.Exit(1)
	}

	if err := common.Validate(); err != nil {
		fatal(err)
	}

	circuits, err := loadCircuits(common, *bench, *seed)
	if err != nil {
		fatal(err)
	}

	cfg := locusd.Config{
		Backend:         locusroute.Kind(*backendKind),
		Procs:           *procs,
		Partitions:      *partitions,
		Shards:          *shards,
		BatchWindow:     *batchWindow,
		MaxBatch:        *maxBatch,
		MaxInFlight:     *maxInFlight,
		DefaultDeadline: *deadline,
		Pool:            common.Pool(),
		Policy:          common.Policy(),
		EnablePProf:     *pprofFlag,
	}
	if *trace || *slowLog > 0 {
		cfg.Tracer = reqtrace.New(reqtrace.Options{
			Capacity: *traceCap,
			Sample:   *traceSample,
			SlowLog:  *slowLog,
			Logger:   logger,
		})
	}
	var st *store.Store
	if *storeFlag || *storeDir != "" {
		st, err = store.Open(store.Config{Dir: *storeDir, MemBudget: *storeMem << 20})
		if err != nil {
			fatal(err)
		}
		cfg.Store = st
		if rs := st.Recovery(); rs.SnapshotCircuits > 0 || rs.ReplayedRecords > 0 || rs.Truncated {
			logger.Info("store recovered",
				"snapshot_circuits", rs.SnapshotCircuits,
				"replayed_records", rs.ReplayedRecords,
				"truncated_tail", rs.Truncated)
		}
	}
	logger.Info(fmt.Sprintf("routing %d circuit(s) through the %s backend...", len(circuits), *backendKind))
	srv, err := locusd.New(cfg, circuits...)
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	var binSrv *locusd.TCPServer
	if *listenBin != "" {
		l, err := net.Listen("tcp", *listenBin)
		if err != nil {
			fatal(err)
		}
		binSrv = locusd.NewTCPServer(srv)
		go func() {
			if err := binSrv.Serve(l); !errors.Is(err, locusd.ErrTCPServerClosed) {
				errc <- err
			}
		}()
		logger.Info(fmt.Sprintf("binary protocol on %s", l.Addr()))
	}
	elems := "none"
	if els := srv.Chain().Elements(); len(els) > 0 {
		names := make([]string, len(els))
		for i, el := range els {
			names[i] = el.Name()
		}
		elems = strings.Join(names, ",")
	}
	logger.Info(fmt.Sprintf("serving on %s (%d shards/circuit, window %v, gate %d, policy %s)",
		*addr, *shards, *batchWindow, *maxInFlight, elems),
		"trace", cfg.Tracer.Enabled(), "pprof", *pprofFlag)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info(fmt.Sprintf("%v: draining...", sig))
	case err := <-errc:
		fatal(err)
	}

	// Drain: refuse new work, let in-flight requests finish (bounded by
	// the grace period), then stop the shard loops and exit.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("shutdown", "err", err)
	}
	if binSrv != nil {
		if err := binSrv.Shutdown(ctx); err != nil {
			logger.Warn("bin shutdown", "err", err)
		}
	}
	srv.Close()
	// The server never closes the store it was handed; the owner does,
	// after the serving loops stop, so the final WAL records are synced.
	if st != nil {
		if err := st.Close(); err != nil {
			logger.Warn("store close", "err", err)
		}
	}
	logger.Info("drained cleanly")
}

// loadCircuits builds the serving set: the -circuit file when given,
// else the selected builtin benchmark(s).
func loadCircuits(common *cli.Common, bench string, seed int64) ([]*circuit.Circuit, error) {
	if common.CircuitFile != "" {
		c, err := common.LoadCircuit()
		if err != nil {
			return nil, err
		}
		return []*circuit.Circuit{c}, nil
	}
	var gens []func(int64) circuit.GenParams
	switch bench {
	case "bnrE":
		gens = []func(int64) circuit.GenParams{circuit.BnrELike}
	case "MDC":
		gens = []func(int64) circuit.GenParams{circuit.MDCLike}
	case "both":
		gens = []func(int64) circuit.GenParams{circuit.BnrELike, circuit.MDCLike}
	default:
		return nil, errors.New(`-bench must be bnrE, MDC or both`)
	}
	var out []*circuit.Circuit
	for _, gen := range gens {
		c, err := circuit.Generate(gen(seed))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Command locusd serves route-request traffic over HTTP against
// preloaded circuits: a long-running daemon wrapping the pkg/locusroute
// backends behind internal/locusd's sharded batch-serving layer.
//
// Usage:
//
//	locusd [-addr :8347] [-listen-bin addr] [-bench bnrE|MDC|both]
//	       [-seed 1] [-circuit file]
//	       [-backend sequential|sm-live|sm-traced|mp-des|mp-live]
//	       [-procs 16] [-shards 4] [-batch-window 2ms] [-max-batch 64]
//	       [-max-in-flight 256] [-deadline 5s] [-par N]
//	       [-admit-floor 0] [-rate-limit 0] [-rate-burst 0]
//	       [-breaker-failures 0] [-breaker-cooldown 1s] [-cache-size 0]
//	       [-edf]
//
// The policy flags assemble the request-path chain (internal/policy):
// deadline admission, per-client token-bucket rate limiting, a circuit
// breaker, a result cache keyed by (circuit, wire set, cost epoch), and
// the criticality scheduler (-edf: earliest-deadline-first batches,
// least-critical-first shedding). Each element is off by default and
// costs nothing while disabled.
//
// On startup each circuit is routed once through the selected backend;
// the resulting cost array seeds the serving replicas. Endpoints:
//
//	POST /route       {"circuit","pins":[[x,y],...],"commit","deadline_ms"}
//	GET  /circuits    served circuits and their baseline quality
//	GET  /healthz     200 ok / 503 draining
//	GET  /metrics     Prometheus text exposition
//	GET  /debug/vars  counters and histograms as JSON
//
// -listen-bin additionally serves the length-prefixed binary route
// protocol (internal/wire) on a raw TCP listener, funneling into the
// same request core; cmd/locusload drives either transport.
//
// SIGINT/SIGTERM begins a graceful drain: /healthz flips to 503 (so load
// balancers stop sending), new routes are refused, in-flight requests
// complete, and the process exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"locusroute/internal/circuit"
	"locusroute/internal/cli"
	"locusroute/internal/locusd"
	"locusroute/pkg/locusroute"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("locusd: ")
	common := cli.New("locusd")
	common.AddPar(flag.CommandLine, "bounds concurrent batch evaluations")
	common.AddCircuitFile(flag.CommandLine)
	common.AddPolicy(flag.CommandLine)
	var (
		addr        = flag.String("addr", ":8347", "listen address")
		listenBin   = flag.String("listen-bin", "", "also serve the binary route protocol on this TCP address")
		bench       = flag.String("bench", "both", "builtin circuits to serve: bnrE, MDC or both")
		seed        = flag.Int64("seed", 1, "benchmark generator seed")
		backendKind = flag.String("backend", string(locusroute.Sequential),
			fmt.Sprintf("baseline routing backend: one of %v", locusroute.Kinds()))
		procs       = flag.Int("procs", 16, "processors for the baseline backend")
		partitions  = flag.Int("partitions", 0, "leaf regions for the partitioned baseline backend (0 = backend default)")
		shards      = flag.Int("shards", 4, "serving replicas per circuit")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "how long a shard waits to grow a batch")
		maxBatch    = flag.Int("max-batch", 64, "max wires per batch")
		maxInFlight = flag.Int("max-in-flight", 256, "admitted requests before shedding 429s")
		deadline    = flag.Duration("deadline", 5*time.Second, "default per-request deadline")
		drainGrace  = flag.Duration("drain-grace", 30*time.Second, "shutdown bound for completing in-flight requests")
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}

	circuits, err := loadCircuits(common, *bench, *seed)
	if err != nil {
		log.Fatal(err)
	}

	cfg := locusd.Config{
		Backend:         locusroute.Kind(*backendKind),
		Procs:           *procs,
		Partitions:      *partitions,
		Shards:          *shards,
		BatchWindow:     *batchWindow,
		MaxBatch:        *maxBatch,
		MaxInFlight:     *maxInFlight,
		DefaultDeadline: *deadline,
		Pool:            common.Pool(),
		Policy:          common.Policy(),
	}
	log.Printf("routing %d circuit(s) through the %s backend...", len(circuits), *backendKind)
	srv, err := locusd.New(cfg, circuits...)
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	var binSrv *locusd.TCPServer
	if *listenBin != "" {
		l, err := net.Listen("tcp", *listenBin)
		if err != nil {
			log.Fatal(err)
		}
		binSrv = locusd.NewTCPServer(srv)
		go func() {
			if err := binSrv.Serve(l); !errors.Is(err, locusd.ErrTCPServerClosed) {
				errc <- err
			}
		}()
		log.Printf("binary protocol on %s", l.Addr())
	}
	elems := "none"
	if els := srv.Chain().Elements(); len(els) > 0 {
		names := make([]string, len(els))
		for i, el := range els {
			names[i] = el.Name()
		}
		elems = strings.Join(names, ",")
	}
	log.Printf("serving on %s (%d shards/circuit, window %v, gate %d, policy %s)",
		*addr, *shards, *batchWindow, *maxInFlight, elems)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%v: draining...", sig)
	case err := <-errc:
		log.Fatal(err)
	}

	// Drain: refuse new work, let in-flight requests finish (bounded by
	// the grace period), then stop the shard loops and exit.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if binSrv != nil {
		if err := binSrv.Shutdown(ctx); err != nil {
			log.Printf("bin shutdown: %v", err)
		}
	}
	srv.Close()
	log.Printf("drained cleanly")
}

// loadCircuits builds the serving set: the -circuit file when given,
// else the selected builtin benchmark(s).
func loadCircuits(common *cli.Common, bench string, seed int64) ([]*circuit.Circuit, error) {
	if common.CircuitFile != "" {
		c, err := common.LoadCircuit()
		if err != nil {
			return nil, err
		}
		return []*circuit.Circuit{c}, nil
	}
	var gens []func(int64) circuit.GenParams
	switch bench {
	case "bnrE":
		gens = []func(int64) circuit.GenParams{circuit.BnrELike}
	case "MDC":
		gens = []func(int64) circuit.GenParams{circuit.MDCLike}
	case "both":
		gens = []func(int64) circuit.GenParams{circuit.BnrELike, circuit.MDCLike}
	default:
		return nil, errors.New(`-bench must be bnrE, MDC or both`)
	}
	var out []*circuit.Circuit
	for _, gen := range gens {
		c, err := circuit.Generate(gen(seed))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Command smtrace runs the traced shared memory LocusRoute (the Tango
// methodology), replays the shared reference trace through the Write Back
// with Invalidate coherence simulator, and prints the bus traffic
// breakdown per cache line size.
//
// Usage:
//
//	smtrace [-bench bnrE|MDC] [-procs 16] [-iters N] [-lines 4,8,16,32]
//	        [-assign dynamic|rr|threshold] [-threshold 1000] [-par N]
//
// The per-line-size replays are independent and fan out across -par
// workers; the printed breakdown (and any -json document) is identical
// at every -par value because results merge in line-size order.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"locusroute/internal/cache"
	"locusroute/internal/cli"
	"locusroute/internal/obs"
	"locusroute/internal/par"
	"locusroute/internal/route"
	"locusroute/internal/sm"
	"locusroute/internal/trace"
	"locusroute/pkg/locusroute"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smtrace: ")
	common := cli.New("smtrace")
	common.AddPar(flag.CommandLine, "bounds concurrent cache replays; output is identical at every value")
	common.AddObs(flag.CommandLine)
	common.AddBench(flag.CommandLine)
	var (
		procs     = flag.Int("procs", 16, "number of logical processes")
		iters     = flag.Int("iters", route.DefaultParams().Iterations, "routing iterations")
		lines     = flag.String("lines", "4,8,16,32", "comma-separated cache line sizes (bytes)")
		asnMethod = flag.String("assign", "dynamic", "wire distribution: dynamic, rr or threshold")
		threshold = flag.Int("threshold", 1000, "ThresholdCost for -assign threshold (-1 = infinity)")
		dump      = flag.String("dump", "", "write the shared reference trace to this file and exit")
		replay    = flag.String("replay", "", "skip tracing; replay this trace file instead")
		capLines  = flag.Int("cache-lines", 0, "finite cache capacity in lines (0 = infinite, the paper's assumption)")
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}

	stopProfile, err := common.StartProfile()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfile()

	pool := common.Pool()

	if *replay != "" {
		replayFile(common, pool, *replay, *lines, *capLines)
		return
	}

	c, err := common.LoadCircuit()
	if err != nil {
		log.Fatal(err)
	}
	col := common.Collector()

	opts := []locusroute.Option{
		locusroute.WithProcs(*procs),
		locusroute.WithIterations(*iters),
		locusroute.WithObserver(col),
	}
	switch *asnMethod {
	case "dynamic":
		opts = append(opts, locusroute.WithDynamicOrder())
	case "rr":
		opts = append(opts, locusroute.WithRoundRobin())
	case "threshold":
		opts = append(opts, locusroute.WithThreshold(*threshold))
	default:
		log.Fatalf("unknown assignment %q", *asnMethod)
	}
	backend, err := locusroute.NewTracedSharedMemory(opts...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := backend.Route(context.Background(), locusroute.Request{Circuit: c, Name: common.Bench})
	if err != nil {
		log.Fatal(err)
	}
	tr, smRes := res.RefTrace, res.SM
	runDoc := col.Last()
	order := sm.Dynamic
	if *asnMethod != "dynamic" {
		order = sm.Static
	}

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteFile(f, tr, *procs); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d references from %d processes to %s\n", tr.Len(), *procs, *dump)
		writeSnapshot(common, col)
		return
	}
	fmt.Printf("circuit %s, %d processes, %s distribution\n", c.Name, *procs, order)
	fmt.Printf("circuit height:   %d\n", res.CircuitHeight)
	fmt.Printf("occupancy factor: %d\n", res.Occupancy)
	fmt.Printf("virtual makespan: %v\n", smRes.Span)
	fmt.Printf("shared refs:      %d reads, %d writes\n\n", smRes.Reads, smRes.Writes)

	replayTrace(pool, tr, *procs, *lines, *capLines, runDoc)
	writeSnapshot(common, col)
}

// writeSnapshot writes the collected document when -json was given.
func writeSnapshot(common *cli.Common, col *obs.Collector) {
	if err := common.WriteSnapshot(col); err != nil {
		log.Fatal(err)
	}
}

// replayTrace runs the coherence simulation at each line size — the
// replays are independent and run concurrently, bounded by pool — and
// prints the traffic breakdowns in line-size order. When runDoc is
// non-nil, each infinite-cache replay appends its traffic document to it
// in the same order (the finite-capacity extension is print-only).
func replayTrace(pool *par.Pool, tr *trace.Trace, procs int, lines string, capLines int, runDoc *obs.Run) {
	var sizes []int
	for _, field := range strings.Split(lines, ",") {
		ls, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			log.Fatalf("bad line size %q: %v", field, err)
		}
		sizes = append(sizes, ls)
	}
	type replay struct {
		text string
		sim  *cache.Simulator // nil for finite-capacity replays
	}
	out, err := par.Gather(sizes, func(_ int, ls int) (replay, error) {
		if capLines > 0 {
			var t cache.Traffic
			var err error
			pool.Run(func() { t, err = cache.ReplayFinite(tr, procs, ls, capLines) })
			if err != nil {
				return replay{}, err
			}
			return replay{text: fmt.Sprintf("line %2dB (cache %d lines): %7.3f MBytes  (fills %.3f, word writes %.3f, writebacks %.3f MB)\n",
				ls, capLines, t.MBytes(), float64(t.FillBytes)/1e6,
				float64(t.WriteWordBytes)/1e6, float64(t.WritebackBytes)/1e6)}, nil
		}
		simr, err := cache.New(procs, ls)
		if err != nil {
			return replay{}, err
		}
		pool.Run(func() {
			for _, ref := range tr.Refs {
				simr.Access(ref)
			}
		})
		t := simr.Traffic()
		return replay{sim: simr, text: fmt.Sprintf("line %2dB: %7.3f MBytes  (fills %.3f, word writes %.3f, writebacks %.3f MB; %d invalidations; %.0f%% write-caused)\n",
			ls, t.MBytes(), float64(t.FillBytes)/1e6, float64(t.WriteWordBytes)/1e6,
			float64(t.WritebackBytes)/1e6, t.Invalidations, simr.AttributedWriteFraction()*100)}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range out {
		if runDoc != nil && r.sim != nil {
			runDoc.Cache = append(runDoc.Cache, r.sim.Doc())
		}
		fmt.Print(r.text)
	}
}

// replayFile loads a dumped trace and replays it.
func replayFile(common *cli.Common, pool *par.Pool, path, lines string, capLines int) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, procs, err := trace.ReadFile(f)
	if err != nil {
		log.Fatal(err)
	}
	col := common.Collector()
	runDoc := col.Append(obs.Run{Name: path, Backend: "cache-replay", Procs: procs})
	fmt.Printf("replaying %d references from %d processes (%s)\n", tr.Len(), procs, path)
	replayTrace(pool, tr, procs, lines, capLines, runDoc)
	writeSnapshot(common, col)
}

// Command smtrace runs the traced shared memory LocusRoute (the Tango
// methodology), replays the shared reference trace through the Write Back
// with Invalidate coherence simulator, and prints the bus traffic
// breakdown per cache line size.
//
// Usage:
//
//	smtrace [-bench bnrE|MDC] [-procs 16] [-iters N] [-lines 4,8,16,32]
//	        [-assign dynamic|rr|threshold] [-threshold 1000] [-par N]
//
// The per-line-size replays are independent and fan out across -par
// workers; the printed breakdown (and any -json document) is identical
// at every -par value because results merge in line-size order.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"locusroute/internal/assign"
	"locusroute/internal/cache"
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/obs"
	"locusroute/internal/par"
	"locusroute/internal/route"
	"locusroute/internal/sm"
	"locusroute/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smtrace: ")
	var (
		bench     = flag.String("bench", "bnrE", "builtin benchmark: bnrE or MDC")
		seed      = flag.Int64("seed", 1, "benchmark generator seed")
		procs     = flag.Int("procs", 16, "number of logical processes")
		iters     = flag.Int("iters", route.DefaultParams().Iterations, "routing iterations")
		lines     = flag.String("lines", "4,8,16,32", "comma-separated cache line sizes (bytes)")
		asnMethod = flag.String("assign", "dynamic", "wire distribution: dynamic, rr or threshold")
		threshold = flag.Int("threshold", 1000, "ThresholdCost for -assign threshold (-1 = infinity)")
		dump      = flag.String("dump", "", "write the shared reference trace to this file and exit")
		replay    = flag.String("replay", "", "skip tracing; replay this trace file instead")
		capLines  = flag.Int("cache-lines", 0, "finite cache capacity in lines (0 = infinite, the paper's assumption)")
		parN      = flag.Int("par", 0, "concurrent cache replays (0 = GOMAXPROCS); output is identical at every value")
		jsonPath  = flag.String("json", "", `write an observability JSON document to this file ("-" = stdout)`)
		profile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	stopProfile, err := obs.StartCPUProfile(*profile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfile()

	pool := par.New(*parN)

	if *replay != "" {
		replayFile(pool, *replay, *lines, *capLines, *jsonPath)
		return
	}

	var c *circuit.Circuit
	switch *bench {
	case "bnrE":
		c, err = circuit.Generate(circuit.BnrELike(*seed))
	case "MDC":
		c, err = circuit.Generate(circuit.MDCLike(*seed))
	default:
		log.Fatalf("unknown benchmark %q", *bench)
	}
	if err != nil {
		log.Fatal(err)
	}

	cfg := sm.DefaultConfig()
	cfg.Procs = *procs
	cfg.Router.Iterations = *iters
	switch *asnMethod {
	case "dynamic":
		cfg.Order = sm.Dynamic
	case "rr", "threshold":
		px, py := geom.SquarestFactors(*procs)
		part, err := geom.NewPartition(c.Grid, px, py)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Order = sm.Static
		if *asnMethod == "rr" {
			cfg.Assignment = assign.AssignRoundRobin(c, part)
		} else {
			th := *threshold
			if th < 0 {
				th = assign.ThresholdInfinity
			}
			cfg.Assignment = assign.AssignThreshold(c, part, th)
		}
	default:
		log.Fatalf("unknown assignment %q", *asnMethod)
	}

	res, tr, err := sm.RunTraced(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	var col *obs.Collector
	var runDoc *obs.Run
	if *jsonPath != "" {
		col = obs.NewCollector()
		runDoc = col.Append(sm.ObsRun(*bench, "sm-traced", c.Name, cfg, res))
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteFile(f, tr, *procs); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d references from %d processes to %s\n", tr.Len(), *procs, *dump)
		writeSnapshot(col, *jsonPath)
		return
	}
	fmt.Printf("circuit %s, %d processes, %s distribution\n", c.Name, *procs, cfg.Order)
	fmt.Printf("circuit height:   %d\n", res.CircuitHeight)
	fmt.Printf("occupancy factor: %d\n", res.Occupancy)
	fmt.Printf("virtual makespan: %v\n", res.Span)
	fmt.Printf("shared refs:      %d reads, %d writes\n\n", res.Reads, res.Writes)

	replayTrace(pool, tr, *procs, *lines, *capLines, runDoc)
	writeSnapshot(col, *jsonPath)
}

// writeSnapshot writes the collected document when -json was given.
func writeSnapshot(col *obs.Collector, jsonPath string) {
	if jsonPath == "" {
		return
	}
	command := strings.Join(append([]string{"smtrace"}, os.Args[1:]...), " ")
	if err := col.Snapshot(command).WriteFile(jsonPath); err != nil {
		log.Fatal(err)
	}
}

// replayTrace runs the coherence simulation at each line size — the
// replays are independent and run concurrently, bounded by pool — and
// prints the traffic breakdowns in line-size order. When runDoc is
// non-nil, each infinite-cache replay appends its traffic document to it
// in the same order (the finite-capacity extension is print-only).
func replayTrace(pool *par.Pool, tr *trace.Trace, procs int, lines string, capLines int, runDoc *obs.Run) {
	var sizes []int
	for _, field := range strings.Split(lines, ",") {
		ls, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			log.Fatalf("bad line size %q: %v", field, err)
		}
		sizes = append(sizes, ls)
	}
	type replay struct {
		text string
		sim  *cache.Simulator // nil for finite-capacity replays
	}
	out, err := par.Gather(sizes, func(_ int, ls int) (replay, error) {
		if capLines > 0 {
			var t cache.Traffic
			var err error
			pool.Run(func() { t, err = cache.ReplayFinite(tr, procs, ls, capLines) })
			if err != nil {
				return replay{}, err
			}
			return replay{text: fmt.Sprintf("line %2dB (cache %d lines): %7.3f MBytes  (fills %.3f, word writes %.3f, writebacks %.3f MB)\n",
				ls, capLines, t.MBytes(), float64(t.FillBytes)/1e6,
				float64(t.WriteWordBytes)/1e6, float64(t.WritebackBytes)/1e6)}, nil
		}
		simr, err := cache.New(procs, ls)
		if err != nil {
			return replay{}, err
		}
		pool.Run(func() {
			for _, ref := range tr.Refs {
				simr.Access(ref)
			}
		})
		t := simr.Traffic()
		return replay{sim: simr, text: fmt.Sprintf("line %2dB: %7.3f MBytes  (fills %.3f, word writes %.3f, writebacks %.3f MB; %d invalidations; %.0f%% write-caused)\n",
			ls, t.MBytes(), float64(t.FillBytes)/1e6, float64(t.WriteWordBytes)/1e6,
			float64(t.WritebackBytes)/1e6, t.Invalidations, simr.AttributedWriteFraction()*100)}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range out {
		if runDoc != nil && r.sim != nil {
			runDoc.Cache = append(runDoc.Cache, r.sim.Doc())
		}
		fmt.Print(r.text)
	}
}

// replayFile loads a dumped trace and replays it.
func replayFile(pool *par.Pool, path, lines string, capLines int, jsonPath string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, procs, err := trace.ReadFile(f)
	if err != nil {
		log.Fatal(err)
	}
	var col *obs.Collector
	var runDoc *obs.Run
	if jsonPath != "" {
		col = obs.NewCollector()
		runDoc = col.Append(obs.Run{Name: path, Backend: "cache-replay", Procs: procs})
	}
	fmt.Printf("replaying %d references from %d processes (%s)\n", tr.Len(), procs, path)
	replayTrace(pool, tr, procs, lines, capLines, runDoc)
	writeSnapshot(col, jsonPath)
}

// Command locusload is an open-loop load generator for locusd: it fires
// route requests on a fixed arrival schedule (target qps, not
// closed-loop request-per-connection), so server slowdowns show up as
// latency rather than silently throttling the offered load — the
// standard guard against coordinated omission.
//
// Usage:
//
//	locusload [-addr 127.0.0.1:8347] [-proto json|bin] [-qps 200]
//	          [-duration 10s] [-warmup 1s] [-conns 8]
//	          [-circuit bnrE-like] [-pins "2,1;40,4"] [-wire 9000]
//	          [-deadline-ms 0] [-commit] [-client locusload]
//	          [-sweep "100,200,400,800"] [-stages]
//	          [-mutate-frac 0] [-mutate-wire 0]
//
// -proto selects the transport: json posts to locusd's HTTP /v1/route,
// bin speaks the length-prefixed binary protocol (internal/wire) against
// a -listen-bin listener. Comparing the two on the same server isolates
// encoding cost, the service-layer echo of the paper's finding that
// message packing dominates the message-passing router.
//
// Each run (or each -sweep step) emits one JSON row on stdout:
//
//	{"proto","target_qps","sent","ok","shed","expired","errors",
//	 "achieved_qps","latency_us":{"p50","p90","p99","p999","max"}}
//
// -stages requests traced responses (the binary protocol's traced
// frames, or the stage breakdown locusd's JSON responses carry when
// tracing is on) and adds "stages_us": the mean per-stage server-side
// latency over successful requests, keyed by stage name. The row shows
// where wall time went — queueing, batching, routing or commit — as
// measured by the server, complementing the client-side latency_us.
//
// -mutate-frac mixes mutation traffic into the schedule: that fraction
// of arrivals (spread evenly, deterministic per index) issue a one-op
// reroute of -mutate-wire against the target circuit instead of a route
// request — POST /v1/mutate over json, a mutate frame over bin. The
// target must be served mutable (a runtime upload, or a startup circuit
// adopted by a -store sequential daemon). Mutation latencies are kept
// out of latency_us and reported as their own percentile block,
// "mutate_us", so write-path cost is visible next to read-path cost.
//
// Latency is measured from each request's *scheduled* arrival, so time
// spent waiting for a free connection counts against the server. A sweep
// ends with a summary row carrying max_sustained_qps: the highest step
// whose successful throughput reached >= 95% of the offered rate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"locusroute/internal/geom"
	"locusroute/internal/reqtrace"
	"locusroute/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("locusload: ")
	var (
		addr       = flag.String("addr", "127.0.0.1:8347", "locusd address (HTTP host:port for json, TCP for bin)")
		proto      = flag.String("proto", "json", "transport: json or bin")
		qps        = flag.Float64("qps", 200, "offered load, requests per second")
		duration   = flag.Duration("duration", 10*time.Second, "measured run length per step")
		warmup     = flag.Duration("warmup", time.Second, "unmeasured warmup before each step")
		conns      = flag.Int("conns", 8, "connection pool size")
		circuitF   = flag.String("circuit", "bnrE-like", "served circuit to route against")
		pinsF      = flag.String("pins", "2,1;40,4", "wire pins as x,y;x,y;...")
		wireBase   = flag.Int("wire", 9000, "base wire id (incremented per request)")
		deadlineMS = flag.Int64("deadline-ms", 0, "per-request deadline (0 = server default)")
		commit     = flag.Bool("commit", false, "commit each routed path")
		client     = flag.String("client", "locusload", "client identity for rate limiting")
		sweepF     = flag.String("sweep", "", "comma-separated qps steps (overrides -qps)")
		stages     = flag.Bool("stages", false, "request traced responses and report mean per-stage server latency (stages_us)")
		mutateFrac = flag.Float64("mutate-frac", 0, "fraction of arrivals issued as mutations (reroute of -mutate-wire); reported separately as mutate_us")
		mutateWire = flag.Int("mutate-wire", 0, "wire id the mutation traffic reroutes")
	)
	flag.Parse()
	if *proto != "json" && *proto != "bin" {
		log.Fatal("-proto must be json or bin")
	}
	if *mutateFrac < 0 || *mutateFrac > 1 {
		log.Fatal("-mutate-frac must be in [0,1]")
	}
	pins, err := parsePins(*pinsF)
	if err != nil {
		log.Fatal(err)
	}
	steps := []float64{*qps}
	if *sweepF != "" {
		steps = steps[:0]
		for _, s := range strings.Split(*sweepF, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || v <= 0 {
				log.Fatalf("bad -sweep step %q", s)
			}
			steps = append(steps, v)
		}
	}

	cfg := runConfig{
		addr: *addr, proto: *proto, conns: *conns,
		circuit: *circuitF, pins: pins, wireBase: *wireBase,
		deadlineMS: *deadlineMS, commit: *commit, client: *client,
		stages: *stages, mutateFrac: *mutateFrac, mutateWire: *mutateWire,
	}
	enc := json.NewEncoder(os.Stdout)
	sustained := 0.0
	for _, step := range steps {
		if *warmup > 0 {
			if _, err := cfg.run(step, *warmup); err != nil {
				log.Fatal(err)
			}
		}
		row, err := cfg.run(step, *duration)
		if err != nil {
			log.Fatal(err)
		}
		if err := enc.Encode(row); err != nil {
			log.Fatal(err)
		}
		// A step is sustained when successful throughput kept pace with
		// the offered schedule: ok-per-elapsed, not ok-per-scheduled, so a
		// run that finished late (the open loop backed up) doesn't count.
		if row.AchievedQPS >= 0.95*step && step > sustained {
			sustained = step
		}
	}
	if len(steps) > 1 {
		if err := enc.Encode(map[string]any{"proto": *proto, "max_sustained_qps": sustained}); err != nil {
			log.Fatal(err)
		}
	}
}

// runConfig is everything one measured step needs.
type runConfig struct {
	addr, proto string
	conns       int
	circuit     string
	pins        []geom.Point
	wireBase    int
	deadlineMS  int64
	commit      bool
	client      string
	stages      bool
	mutateFrac  float64
	mutateWire  int
}

// isMutate deterministically marks mutateFrac of the arrival indices as
// mutation requests, spread evenly through the schedule (the index
// crosses an integer multiple of 1/frac), so a run's mix is exact and
// reproducible rather than sampled.
func (c runConfig) isMutate(i int) bool {
	if c.mutateFrac <= 0 {
		return false
	}
	return int(float64(i+1)*c.mutateFrac) > int(float64(i)*c.mutateFrac)
}

// row is one step's JSON result.
type row struct {
	Proto       string  `json:"proto"`
	TargetQPS   float64 `json:"target_qps"`
	Sent        int     `json:"sent"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed"`
	Expired     int     `json:"expired"`
	Errors      int     `json:"errors"`
	AchievedQPS float64 `json:"achieved_qps"`
	Latency     latency `json:"latency_us"`
	// StagesUS is the mean server-side latency per stage over OK
	// responses, in microseconds, present only under -stages against a
	// tracing-enabled server.
	StagesUS map[string]float64 `json:"stages_us,omitempty"`
	// MutateUS is the latency percentile block over successful mutation
	// requests, present only under -mutate-frac. Mutation latencies are
	// excluded from Latency so the read path stays comparable across
	// runs with different mixes.
	MutateUS *latency `json:"mutate_us,omitempty"`
}

type latency struct {
	P50  int64 `json:"p50"`
	P90  int64 `json:"p90"`
	P99  int64 `json:"p99"`
	P999 int64 `json:"p999"`
	Max  int64 `json:"max"`
}

// result is one request's outcome: the HTTP-equivalent status code and
// the latency from scheduled arrival to response.
type result struct {
	code   int
	lat    time.Duration
	st     stageNs
	mutate bool
}

// stageNs is one traced response's server-side stage breakdown; ok is
// false when the response carried none (untraced run, or tracing off
// server-side).
type stageNs struct {
	ok bool
	ns [reqtrace.NumStages]int64
}

// run offers qps for d and aggregates outcomes. The arrival schedule is
// fixed up front (start + i*interval); workers pull arrival indices from
// a channel and sleep until each one's scheduled time, so a slow server
// backs up latency, never the offered schedule.
func (c runConfig) run(qps float64, d time.Duration) (row, error) {
	n := int(qps * d.Seconds())
	if n < 1 {
		n = 1
	}
	interval := time.Duration(float64(d) / float64(n))
	workers := c.conns
	if workers > n {
		workers = n
	}
	arrivals := make(chan int, n)
	for i := 0; i < n; i++ {
		arrivals <- i
	}
	close(arrivals)

	results := make(chan result, n)
	errs := make(chan error, workers)
	start := time.Now().Add(10 * time.Millisecond)
	for w := 0; w < workers; w++ {
		go func() {
			sh, err := c.newShooter()
			if err != nil {
				errs <- err
				return
			}
			defer sh.close()
			for i := range arrivals {
				at := start.Add(time.Duration(i) * interval)
				if wait := time.Until(at); wait > 0 {
					time.Sleep(wait)
				}
				mutate := c.isMutate(i)
				code, st, err := sh.shoot(c, i, mutate)
				if err != nil {
					// Transport failure: count as an error outcome and
					// reconnect for the next arrival.
					results <- result{code: -1, lat: time.Since(at), mutate: mutate}
					sh.close()
					if sh, err = c.newShooter(); err != nil {
						errs <- err
						return
					}
					continue
				}
				results <- result{code: code, lat: time.Since(at), st: st, mutate: mutate}
			}
			errs <- nil
		}()
	}
	var out row
	out.Proto = c.proto
	out.TargetQPS = qps
	var lats, mlats []time.Duration
	var stageSum [reqtrace.NumStages]int64
	stageN := 0
	tally := func(r result) {
		out.Sent++
		switch {
		case r.code == 200 && r.mutate:
			out.OK++
			mlats = append(mlats, r.lat)
		case r.code == 200:
			out.OK++
			lats = append(lats, r.lat)
			if r.st.ok {
				stageN++
				for k, v := range r.st.ns {
					stageSum[k] += v
				}
			}
		case r.code == 429:
			out.Shed++
		case r.code == 504:
			out.Expired++
		default:
			out.Errors++
		}
	}
	done := 0
	for done < workers {
		select {
		case err := <-errs:
			if err != nil {
				return row{}, err
			}
			done++
		case r := <-results:
			tally(r)
		}
	}
	close(results)
	for r := range results {
		tally(r)
	}
	elapsed := time.Since(start)
	if elapsed > 0 {
		out.AchievedQPS = round1(float64(out.OK) / elapsed.Seconds())
	}
	out.Latency = percentiles(lats)
	if len(mlats) > 0 {
		m := percentiles(mlats)
		out.MutateUS = &m
	}
	if stageN > 0 {
		out.StagesUS = make(map[string]float64)
		for k, sum := range stageSum {
			if sum > 0 {
				out.StagesUS[reqtrace.Stage(k).String()] = round1(float64(sum) / float64(stageN) / 1e3)
			}
		}
	}
	return out, nil
}

// percentiles computes the latency sinks in microseconds.
func percentiles(lats []time.Duration) latency {
	if len(lats) == 0 {
		return latency{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(p float64) int64 {
		i := int(p * float64(len(lats)-1))
		return lats[i].Microseconds()
	}
	return latency{
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		P999: at(0.999),
		Max:  lats[len(lats)-1].Microseconds(),
	}
}

func round1(v float64) float64 { return float64(int(v*10+0.5)) / 10 }

// shooter is one pooled connection: an HTTP client slot or a binary
// wire.Conn, firing one request at a time.
type shooter struct {
	http *http.Client
	url  string
	murl string
	bin  *wire.Conn
}

func (c runConfig) newShooter() (*shooter, error) {
	if c.proto == "bin" {
		conn, err := wire.Dial(c.addr)
		if err != nil {
			return nil, fmt.Errorf("dial %s: %w", c.addr, err)
		}
		return &shooter{bin: conn}, nil
	}
	// One transport per shooter keeps exactly one TCP connection per
	// worker, matching the bin side's pool shape.
	return &shooter{
		http: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 1}},
		url:  "http://" + c.addr + "/v1/route",
		murl: "http://" + c.addr + "/v1/mutate",
	}, nil
}

func (s *shooter) close() {
	if s == nil {
		return
	}
	if s.bin != nil {
		s.bin.Close()
	}
	if s.http != nil {
		s.http.CloseIdleConnections()
	}
}

// shoot fires request i and returns the HTTP-equivalent status code and
// any server-side stage breakdown (-stages only). Mutation arrivals go
// through shootMutate instead of the route path.
func (s *shooter) shoot(c runConfig, i int, mutate bool) (int, stageNs, error) {
	if mutate {
		code, err := s.shootMutate(c)
		return code, stageNs{}, err
	}
	if s.bin != nil {
		resp, err := s.bin.Do(&wire.Request{
			Circuit: c.circuit,
			WireID:  c.wireBase + i,
			Pins:    c.pins,
			// Traced asks for a traced response frame: the server echoes
			// its minted request id and the per-stage latency pairs.
			Traced:         c.stages,
			DeadlineMillis: c.deadlineMS,
			Commit:         c.commit,
			Client:         c.client,
		})
		if err != nil {
			return 0, stageNs{}, err
		}
		var st stageNs
		if resp.Traced && len(resp.Stages) > 0 {
			st.ok = true
			for _, p := range resp.Stages {
				if int(p.Stage) < len(st.ns) {
					st.ns[p.Stage] += p.Ns
				}
			}
		}
		return resp.Status.HTTPStatus(), st, nil
	}
	body := jsonBody{
		Circuit: c.circuit, Wire: c.wireBase + i, Commit: c.commit, DeadlineMillis: c.deadlineMS,
	}
	for _, p := range c.pins {
		body.Pins = append(body.Pins, [2]int{p.X, p.Y})
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, stageNs{}, err
	}
	req, err := http.NewRequest(http.MethodPost, s.url, bytes.NewReader(buf))
	if err != nil {
		return 0, stageNs{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client", c.client)
	resp, err := s.http.Do(req)
	if err != nil {
		return 0, stageNs{}, err
	}
	var st stageNs
	if c.stages && resp.StatusCode == 200 {
		// A tracing-enabled server annotates every JSON response with its
		// stage breakdown; decode it instead of discarding the body.
		var doc jsonStages
		if json.NewDecoder(resp.Body).Decode(&doc) == nil && len(doc.Stages) > 0 {
			st.ok = true
			for _, sp := range doc.Stages {
				if code, ok := reqtrace.StageByName(sp.Stage); ok {
					st.ns[code] += sp.Ns
				}
			}
		}
	}
	// Drain so the connection is reused; any undecoded rest is not needed.
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, st, nil
}

// shootMutate fires one single-op mutation: reroute -mutate-wire with
// its existing pins against current congestion. Rerouting the same wire
// is always a valid batch, so the mutation mix needs no coordination
// with the route traffic.
func (s *shooter) shootMutate(c runConfig) (int, error) {
	if s.bin != nil {
		resp, err := s.bin.DoMutate(&wire.Mutate{
			Circuit: c.circuit,
			Client:  c.client,
			Ops:     []wire.MutateOp{{Op: wire.OpReroute, WireID: c.mutateWire}},
		})
		if err != nil {
			return 0, err
		}
		return resp.Status.HTTPStatus(), nil
	}
	body := mutateJSONBody{Circuit: c.circuit}
	body.Ops = append(body.Ops, mutateJSONOp{Op: "reroute", Wire: c.mutateWire})
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(http.MethodPost, s.murl, bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client", c.client)
	resp, err := s.http.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// mutateJSONBody mirrors locusd's /v1/mutate request document.
type mutateJSONBody struct {
	Circuit string         `json:"circuit"`
	Ops     []mutateJSONOp `json:"ops"`
}

type mutateJSONOp struct {
	Op   string   `json:"op"`
	Wire int      `json:"wire"`
	Pins [][2]int `json:"pins,omitempty"`
}

// jsonStages is the slice of locusd's /route response document that
// -stages consumes.
type jsonStages struct {
	Stages []struct {
		Stage string `json:"stage"`
		Ns    int64  `json:"ns"`
	} `json:"stages"`
}

// jsonBody mirrors locusd's /route request document.
type jsonBody struct {
	Circuit        string   `json:"circuit"`
	Wire           int      `json:"wire"`
	Pins           [][2]int `json:"pins"`
	Commit         bool     `json:"commit"`
	DeadlineMillis int64    `json:"deadline_ms"`
}

// parsePins parses "x,y;x,y;..." into points.
func parsePins(s string) ([]geom.Point, error) {
	var pins []geom.Point
	for _, part := range strings.Split(s, ";") {
		var x, y int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d,%d", &x, &y); err != nil {
			return nil, fmt.Errorf("bad pin %q (want x,y)", part)
		}
		pins = append(pins, geom.Pt(x, y))
	}
	if len(pins) < 2 {
		return nil, fmt.Errorf("need >= 2 pins, got %d", len(pins))
	}
	return pins, nil
}

// Package locusroute reproduces "Tradeoffs in Message Passing and Shared
// Memory Implementations of a Standard Cell Router" (Martonosi & Gupta,
// ICPP 1989) in Go: the LocusRoute standard cell router, its message
// passing implementation on a simulated k-ary n-cube multicomputer, its
// shared memory implementation with Tango-style tracing and a
// write-back-invalidate coherence simulator, and a harness regenerating
// every table of the paper's evaluation.
//
// Start with README.md; the system inventory is in DESIGN.md and the
// paper-vs-measured results in EXPERIMENTS.md. The top-level test files
// hold the cross-paradigm integration tests and the per-table benchmarks
// (go test -bench . -benchtime 1x).
package locusroute

# Repository verification and benchmark entry points. `make verify` is
# the tier-1 gate every PR must keep green.

GO ?= go

.PHONY: verify build test race bench bench-route bench-policy bench-locusd paper

verify: ## build, vet, full tests, and race-test the concurrent packages
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/sm/... ./internal/mp/... ./internal/sim/... ./internal/locusd/... ./internal/policy/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full race-detector pass over every package. Slower than the targeted
# list in `verify`; CI runs it as its own job.
race:
	$(GO) test -race ./...

# Routing-kernel allocation benchmarks; compare against BENCH_route.json.
bench-route:
	$(GO) test -run '^$$' -bench 'BenchmarkRouteWire|BenchmarkSequential' -benchmem -benchtime 2s . ./internal/route/

# Policy-chain element benchmarks (enabled vs disabled); compare against
# BENCH_policy.json — the disabled rows must stay ~0 ns/op, 0 allocs/op.
bench-policy:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1s ./internal/policy/

# Transport comparison: boots locusd with both listeners and sweeps the
# JSON and binary protocols with cmd/locusload; compare against
# BENCH_locusd.json. Takes ~2 minutes (two 6-step sweeps + warmups).
bench-locusd:
	$(GO) build -o /tmp/locusd-bench ./cmd/locusd
	$(GO) build -o /tmp/locusload-bench ./cmd/locusload
	/tmp/locusd-bench -addr 127.0.0.1:18347 -listen-bin 127.0.0.1:18348 \
		-bench bnrE -shards 4 -batch-window 1ms -max-batch 64 \
		-max-in-flight 512 > /tmp/locusd-bench.log 2>&1 & \
	trap "kill -TERM $$! 2>/dev/null" EXIT; \
	sleep 3; \
	/tmp/locusload-bench -addr 127.0.0.1:18347 -proto json \
		-sweep 1000,2000,4000,6000,8000,12000 -duration 4s -warmup 1s -conns 32; \
	/tmp/locusload-bench -addr 127.0.0.1:18348 -proto bin \
		-sweep 1000,2000,4000,6000,8000,12000 -duration 4s -warmup 1s -conns 32

# Full paper-table benchmarks (several minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Regenerate every paper table.
paper:
	$(GO) run ./cmd/paper -all

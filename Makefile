# Repository verification and benchmark entry points. `make verify` is
# the tier-1 gate every PR must keep green.

GO ?= go

.PHONY: verify build test race bench bench-route bench-policy bench-locusd bench-partition bench-reqtrace smoke-partition paper

verify: ## build, vet, full tests, and race-test the concurrent packages
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/sm/... ./internal/mp/... ./internal/sim/... ./internal/locusd/... ./internal/policy/... ./internal/part/... ./internal/wire/... ./internal/reqtrace/... ./internal/store/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full race-detector pass over every package. Slower than the targeted
# list in `verify`; CI runs it as its own job.
race:
	$(GO) test -race ./...

# Routing-kernel allocation benchmarks; compare against BENCH_route.json.
bench-route:
	$(GO) test -run '^$$' -bench 'BenchmarkRouteWire|BenchmarkSequential' -benchmem -benchtime 2s . ./internal/route/

# Policy-chain element benchmarks (enabled vs disabled); compare against
# BENCH_policy.json — the disabled rows must stay ~0 ns/op, 0 allocs/op.
bench-policy:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1s ./internal/policy/

# Transport comparison: boots locusd with both listeners and sweeps the
# JSON and binary protocols with cmd/locusload; compare against
# BENCH_locusd.json. Takes ~2 minutes (two 6-step sweeps + warmups).
bench-locusd:
	$(GO) build -o /tmp/locusd-bench ./cmd/locusd
	$(GO) build -o /tmp/locusload-bench ./cmd/locusload
	/tmp/locusd-bench -addr 127.0.0.1:18347 -listen-bin 127.0.0.1:18348 \
		-bench bnrE -shards 4 -batch-window 1ms -max-batch 64 \
		-max-in-flight 512 > /tmp/locusd-bench.log 2>&1 & \
	trap "kill -TERM $$! 2>/dev/null" EXIT; \
	sleep 3; \
	/tmp/locusload-bench -addr 127.0.0.1:18347 -proto json \
		-sweep 1000,2000,4000,6000,8000,12000 -duration 4s -warmup 1s -conns 32; \
	/tmp/locusload-bench -addr 127.0.0.1:18348 -proto bin \
		-sweep 1000,2000,4000,6000,8000,12000 -duration 4s -warmup 1s -conns 32

# Request-tracing overhead benchmarks; compare against
# BENCH_reqtrace.json — the disabled row must stay under 5 ns/op and
# 0 allocs/op (the acceptance budget for leaving the hooks compiled in).
bench-reqtrace:
	$(GO) test -run '^$$' -bench Span -benchmem -benchtime 3s ./internal/reqtrace/

# Partition-parallel routing benchmarks on the 10x-scaled bnrE preset;
# compare against BENCH_partition.json (record GOMAXPROCS with the
# numbers — partition speedup needs real cores).
bench-partition:
	$(GO) test -run '^$$' -bench 'Scaled' -benchmem -benchtime 1x ./internal/part/

# CI smoke for the partition backend: partitions=1 must reproduce the
# sequential route hash exactly, partitions=4 must be deterministic
# across runs, and the observed wall-clock ratio is left in
# /tmp/partition-smoke.txt as a build artifact.
smoke-partition:
	$(GO) run ./cmd/paper -table partition -partitions 1 | tee /tmp/partition-p1.txt
	$(GO) run ./cmd/paper -table partition -partitions 4 | tee /tmp/partition-p4a.txt
	$(GO) run ./cmd/paper -table partition -partitions 4 > /tmp/partition-p4b.txt
	grep -q 'partitioned p=1 .*yes *$$' /tmp/partition-p1.txt
	h4a=$$(grep 'partitioned p=4' /tmp/partition-p4a.txt | awk '{print $$(NF-1)}'); \
	h4b=$$(grep 'partitioned p=4' /tmp/partition-p4b.txt | awk '{print $$(NF-1)}'); \
	test -n "$$h4a" && test "$$h4a" = "$$h4b"
	{ echo "partition smoke $$(date -u +%Y-%m-%dT%H:%M:%SZ)"; \
	  grep -h 'sequential\|partitioned' /tmp/partition-p1.txt /tmp/partition-p4a.txt; } \
	  > /tmp/partition-smoke.txt
	@echo "smoke-partition: OK (artifact at /tmp/partition-smoke.txt)"

# Full paper-table benchmarks (several minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Regenerate every paper table.
paper:
	$(GO) run ./cmd/paper -all

# Repository verification and benchmark entry points. `make verify` is
# the tier-1 gate every PR must keep green.

GO ?= go

.PHONY: verify build test race bench bench-route bench-policy paper

verify: ## build, vet, full tests, and race-test the concurrent packages
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/sm/... ./internal/mp/... ./internal/sim/... ./internal/locusd/... ./internal/policy/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full race-detector pass over every package. Slower than the targeted
# list in `verify`; CI runs it as its own job.
race:
	$(GO) test -race ./...

# Routing-kernel allocation benchmarks; compare against BENCH_route.json.
bench-route:
	$(GO) test -run '^$$' -bench 'BenchmarkRouteWire|BenchmarkSequential' -benchmem -benchtime 2s . ./internal/route/

# Policy-chain element benchmarks (enabled vs disabled); compare against
# BENCH_policy.json — the disabled rows must stay ~0 ns/op, 0 allocs/op.
bench-policy:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1s ./internal/policy/

# Full paper-table benchmarks (several minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Regenerate every paper table.
paper:
	$(GO) run ./cmd/paper -all

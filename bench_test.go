// Package locusroute's top-level benchmarks regenerate every table of the
// paper's evaluation section at full scale (one benchmark per table, plus
// the Section 5.1.3 and 5.3.3 comparisons) and report the headline
// numbers as benchmark metrics. Micro-benchmarks of the core primitives
// (route evaluation, mesh transport, packet codec, coherence replay)
// follow.
//
// Regenerate everything:
//
//	go test -bench . -benchtime 1x
package locusroute

import (
	"fmt"
	"testing"

	"locusroute/internal/assign"
	"locusroute/internal/cache"
	"locusroute/internal/circuit"
	"locusroute/internal/experiments"
	"locusroute/internal/geom"
	"locusroute/internal/mesh"
	"locusroute/internal/mp"
	"locusroute/internal/msg"
	"locusroute/internal/par"
	"locusroute/internal/route"
	"locusroute/internal/sim"
	"locusroute/internal/sm"
)

// BenchmarkTable1 regenerates Table 1: network traffic using sender
// initiated updates (bnrE, 16 processors).
func BenchmarkTable1(b *testing.B) {
	c := experiments.BnrE()
	s := experiments.DefaultSetup()
	for i := 0; i < b.N; i++ {
		rows := must(experiments.Table1(c, s))(b)
		reportBest(b, rows)
	}
}

// BenchmarkTable2 regenerates Table 2: traffic using non-blocking
// receiver initiated updates.
func BenchmarkTable2(b *testing.B) {
	c := experiments.BnrE()
	s := experiments.DefaultSetup()
	for i := 0; i < b.N; i++ {
		rows := must(experiments.Table2(c, s))(b)
		reportBest(b, rows)
	}
}

// BenchmarkBlockingVsNonBlocking regenerates the Section 5.1.3 blocking
// comparison.
func BenchmarkBlockingVsNonBlocking(b *testing.B) {
	c := experiments.BnrE()
	s := experiments.DefaultSetup()
	for i := 0; i < b.N; i++ {
		rows := must(experiments.Blocking(c, s))(b)
		// Report the blocking time penalty of the first schedule pair.
		b.ReportMetric(rows[1].Seconds/rows[0].Seconds, "blocking-slowdown")
	}
}

// BenchmarkMixed regenerates the Section 5.1.3 mixed schedule comparison.
func BenchmarkMixed(b *testing.B) {
	c := experiments.BnrE()
	s := experiments.DefaultSetup()
	for i := 0; i < b.N; i++ {
		rows := must(experiments.Mixed(c, s))(b)
		b.ReportMetric(float64(rows[2].Occupancy), "mixed-occupancy")
	}
}

// BenchmarkTable3 regenerates Table 3: shared memory traffic as a
// function of cache line size.
func BenchmarkTable3(b *testing.B) {
	c := experiments.BnrE()
	s := experiments.DefaultSetup()
	for i := 0; i < b.N; i++ {
		rows := must(experiments.Table3(c, s))(b)
		b.ReportMetric(rows[0].MBytes, "MB-line4")
		b.ReportMetric(rows[len(rows)-1].MBytes, "MB-line32")
	}
}

// BenchmarkTable4 regenerates Table 4: effect of locality in the message
// passing version (both circuits).
func BenchmarkTable4(b *testing.B) {
	circuits := []*circuit.Circuit{experiments.BnrE(), experiments.MDC()}
	s := experiments.DefaultSetup()
	for i := 0; i < b.N; i++ {
		rows := must(experiments.Table4(circuits, s))(b)
		b.ReportMetric(rows[0].MBytes, "MB-roundrobin")
		b.ReportMetric(rows[3].MBytes, "MB-local")
	}
}

// BenchmarkTable5 regenerates Table 5: effect of locality in the shared
// memory version (both circuits, 8-byte lines).
func BenchmarkTable5(b *testing.B) {
	circuits := []*circuit.Circuit{experiments.BnrE(), experiments.MDC()}
	s := experiments.DefaultSetup()
	for i := 0; i < b.N; i++ {
		rows := must(experiments.Table5(circuits, s))(b)
		b.ReportMetric(rows[0].MBytes, "MB-roundrobin")
		b.ReportMetric(rows[3].MBytes, "MB-local")
	}
}

// BenchmarkTable6 regenerates Table 6: effect of the number of processors.
func BenchmarkTable6(b *testing.B) {
	c := experiments.BnrE()
	s := experiments.DefaultSetup()
	for i := 0; i < b.N; i++ {
		rows := must(experiments.Table6(c, s))(b)
		b.ReportMetric(rows[len(rows)-1].Speedup, "speedup-16p")
	}
}

// BenchmarkLocalityMeasure regenerates the Section 5.3.3 locality
// computation for both circuits.
func BenchmarkLocalityMeasure(b *testing.B) {
	circuits := []*circuit.Circuit{experiments.BnrE(), experiments.MDC()}
	s := experiments.DefaultSetup()
	for i := 0; i < b.N; i++ {
		rows := must(experiments.Locality(circuits, s))(b)
		for _, r := range rows {
			if r.Method == "ThresholdCost = inf." {
				b.ReportMetric(r.Measure, "hops-"+r.Circuit)
			}
		}
	}
}

// BenchmarkComparison regenerates the Section 5.2 cross-paradigm traffic
// and quality comparison.
func BenchmarkComparison(b *testing.B) {
	c := experiments.BnrE()
	s := experiments.DefaultSetup()
	for i := 0; i < b.N; i++ {
		rows := must(experiments.Comparison(c, s))(b)
		b.ReportMetric(rows[0].MBytes/rows[1].MBytes, "SM-over-sender")
		b.ReportMetric(rows[1].MBytes/rows[2].MBytes, "sender-over-receiver")
	}
}

// must unwraps a driver result, failing the benchmark on error. Curried
// so a multi-value driver call can feed it directly.
func must[R any](rows []R, err error) func(testing.TB) []R {
	return func(tb testing.TB) []R {
		tb.Helper()
		if err != nil {
			tb.Fatal(err)
		}
		return rows
	}
}

func reportBest(b *testing.B, rows []experiments.MPRow) {
	b.Helper()
	best := rows[0]
	for _, r := range rows[1:] {
		if r.CktHt < best.CktHt {
			best = r
		}
	}
	b.ReportMetric(float64(best.CktHt), "best-ckt-ht")
	b.ReportMetric(best.MBytes, "best-row-MB")
}

// BenchmarkRenderSet measures the experiment driver end to end at
// reduced scale: the same table set rendered serially (par1) and fanned
// out (par4). The outputs are byte-identical — only the wall clock
// differs, and only when real cores are available.
func BenchmarkRenderSet(b *testing.B) {
	c := circuit.MustGenerate(circuit.GenParams{
		Name: "bench", Channels: 8, Grids: 96, Wires: 90, MeanSpan: 12, Seed: 3,
	})
	names := []string{"1", "blocking", "3", "comparison", "6"}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("par%d", workers), func(b *testing.B) {
			s := experiments.Setup{Procs: 4, Iterations: 2, Threshold: 1000, Pool: par.New(workers)}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RenderSet(names, c, c, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- micro-benchmarks of the primitives ----------------------------------

// BenchmarkRouteWire measures single-wire route evaluation on a loaded
// cost array, in the production configuration: a per-worker Scratch
// reused across calls (see BENCH_route.json for the recorded baseline and
// the pre-Scratch numbers).
func BenchmarkRouteWire(b *testing.B) {
	c := experiments.BnrE()
	res, arr := route.Sequential(c, route.Params{Iterations: 1})
	_ = res
	view := route.ArrayView{A: arr}
	scratch := route.NewScratch(c.Grid)
	w := &c.Wires[17]
	params := route.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.RouteWire(view, w, params)
	}
}

// BenchmarkSequentialIteration measures one full sequential routing pass.
func BenchmarkSequentialIteration(b *testing.B) {
	c := experiments.BnrE()
	params := route.Params{Iterations: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		route.Sequential(c, params)
	}
}

// BenchmarkMeshSend measures DES packet transport across the mesh.
func BenchmarkMeshSend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		n, err := mesh.New(k, 4, 4, mesh.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		k.Spawn("recv", func(p *sim.Process) {
			for j := 0; j < 100; j++ {
				n.Inbox(15).Recv(p)
			}
		})
		k.Spawn("send", func(p *sim.Process) {
			for j := 0; j < 100; j++ {
				n.Send(p, 0, 15, nil, 64)
			}
		})
		k.Run()
	}
}

// BenchmarkMsgCodec measures update packet encode+decode round trips.
func BenchmarkMsgCodec(b *testing.B) {
	vals := make([]int32, 200)
	for i := range vals {
		vals[i] = int32(i % 7)
	}
	m := &msg.Message{Kind: msg.KindSendLocData, Region: geom.R(0, 0, 49, 3), Vals: vals}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := m.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := msg.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheReplay measures coherence simulation throughput on a real
// trace.
func BenchmarkCacheReplay(b *testing.B) {
	c := circuit.MustGenerate(circuit.GenParams{
		Name: "bench", Channels: 8, Grids: 96, Wires: 90, MeanSpan: 12, Seed: 3,
	})
	cfg := sm.DefaultConfig()
	cfg.Procs = 4
	cfg.Router.Iterations = 1
	_, tr, err := sm.RunTraced(c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Replay(tr, 4, 8); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()), "refs")
}

// BenchmarkAssignment measures the static wire assignment phase.
func BenchmarkAssignment(b *testing.B) {
	c := experiments.BnrE()
	part, err := geom.NewPartition(c.Grid, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign.AssignThreshold(c, part, 1000)
	}
}

// BenchmarkMPRunSmall measures a complete small message passing
// simulation end to end.
func BenchmarkMPRunSmall(b *testing.B) {
	c := circuit.MustGenerate(circuit.GenParams{
		Name: "bench", Channels: 8, Grids: 96, Wires: 90, MeanSpan: 12, Seed: 3,
	})
	part, err := geom.NewPartition(c.Grid, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	asn := assign.AssignThreshold(c, part, 1000)
	cfg := mp.DefaultConfig(mp.SenderInitiated(2, 10))
	cfg.Procs = 4
	cfg.Router.Iterations = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mp.Run(c, asn, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPacketStructures regenerates the Section 4.3.1 packet
// structure ablation.
func BenchmarkPacketStructures(b *testing.B) {
	c := experiments.BnrE()
	s := experiments.DefaultSetup()
	for i := 0; i < b.N; i++ {
		rows := must(experiments.PacketStructures(c, s))(b)
		b.ReportMetric(rows[2].MBytes/rows[0].MBytes, "whole-region-over-bbox")
	}
}

// BenchmarkWireDistribution regenerates the Section 4.2 wire distribution
// ablation.
func BenchmarkWireDistribution(b *testing.B) {
	c := experiments.BnrE()
	s := experiments.DefaultSetup()
	for i := 0; i < b.N; i++ {
		rows := must(experiments.WireDistribution(c, s))(b)
		b.ReportMetric(float64(rows[1].CktHt)/float64(rows[0].CktHt), "dynamic-quality-ratio")
	}
}

// BenchmarkCostArrayDistribution regenerates the Section 4.1 strict
// ownership ablation.
func BenchmarkCostArrayDistribution(b *testing.B) {
	c := experiments.BnrE()
	s := experiments.DefaultSetup()
	for i := 0; i < b.N; i++ {
		rows := must(experiments.CostArrayDistribution(c, s))(b)
		b.ReportMetric(float64(rows[1].Packets)/float64(rows[0].Packets), "strict-packet-ratio")
	}
}

// BenchmarkMPRunLive measures the goroutine-and-channel runtime end to
// end on the full bnrE-like circuit.
func BenchmarkMPRunLive(b *testing.B) {
	c := experiments.BnrE()
	part, err := geom.NewPartition(c.Grid, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	asn := assign.AssignThreshold(c, part, 1000)
	cfg := mp.DefaultConfig(mp.SenderInitiated(2, 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mp.RunLive(c, asn, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSMLive measures the atomic shared memory runtime end to end.
func BenchmarkSMLive(b *testing.B) {
	c := experiments.BnrE()
	cfg := sm.DefaultConfig()
	cfg.Procs = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sm.RunLive(c, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
